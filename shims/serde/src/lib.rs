//! Offline shim for `serde`: a real (if minimal) serialization framework.
//!
//! Earlier revisions of this shim exposed `Serialize`/`Deserialize` as
//! no-op marker traits, which made `#[derive(Deserialize)]` compile but
//! meant timing/report JSON written by the bench harness could never be
//! read back. The shim now implements the subset this workspace needs for
//! real: both traits convert through a self-describing [`Value`] tree
//! (the data model `serde_json` renders to and parses from), and the
//! derive macros (re-exported from the shim `serde_derive`) generate real
//! field-by-field implementations.
//!
//! Mapping conventions match `serde`'s defaults so swapping the real
//! crates back in (see `shims/README.md`) changes no on-disk format:
//! structs become maps keyed by field name, unit enum variants become
//! strings, data-carrying variants become externally tagged
//! single-entry maps, `Option::None` becomes null.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// The self-describing data model serialization goes through (the shim's
/// equivalent of `serde_json::Value`). Unsigned and signed integers are
/// kept distinct so `u64` counters round-trip losslessly.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Key-value map in insertion order (field order for structs).
    Map(Vec<(String, Value)>),
}

impl Value {
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Look up a map entry by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) => "unsigned integer",
            Value::I64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Deserialization (and shim `serde_json`) error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl Error {
    pub fn expected(what: &str, ty: &str, got: &Value) -> Error {
        Error(format!("expected {what} for {ty}, got {}", got.kind()))
    }

    pub fn missing_field(field: &str, ty: &str) -> Error {
        Error(format!("missing field `{field}` of {ty}"))
    }

    pub fn unknown_variant(variant: &str, ty: &str) -> Error {
        Error(format!("unknown variant `{variant}` of {ty}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Fetch a struct field from a map, with a typed error when absent.
pub fn map_get<'a>(v: &'a Value, field: &str, ty: &str) -> Result<&'a Value, Error> {
    match v.as_map() {
        Some(m) => m
            .iter()
            .find(|(k, _)| k == field)
            .map(|(_, val)| val)
            .ok_or_else(|| Error::missing_field(field, ty)),
        None => Err(Error::expected("map", ty, v)),
    }
}

/// Convert a value of this type into the [`Value`] data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Reconstruct a value of this type from the [`Value`] data model.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---- primitive impls ---------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error(format!("{n} out of range for {}", stringify!($t)))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error(format!("{n} out of range for {}", stringify!($t)))),
                    other => Err(Error::expected("integer", stringify!($t), other)),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error(format!("{n} out of range for {}", stringify!($t)))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error(format!("{n} out of range for {}", stringify!($t)))),
                    other => Err(Error::expected("integer", stringify!($t), other)),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", "bool", other)),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            other => Err(Error::expected("number", "f64", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::expected("string", "String", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

/// Device and catalog names are `&'static str` preset constants; reading
/// one back interns the parsed string. Only a handful of distinct names
/// ever exist, so the leak is bounded.
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(intern(s)),
            other => Err(Error::expected("string", "&str", other)),
        }
    }
}

fn intern(s: &str) -> &'static str {
    use std::collections::HashSet;
    use std::sync::{Mutex, OnceLock};
    static POOL: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let mut pool = POOL
        .get_or_init(|| Mutex::new(HashSet::new()))
        .lock()
        .expect("intern pool poisoned");
    match pool.get(s) {
        Some(interned) => interned,
        None => {
            let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
            pool.insert(leaked);
            leaked
        }
    }
}

// ---- containers --------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v.as_seq() {
            Some(items) => items.iter().map(T::from_value).collect(),
            None => Err(Error::expected("sequence", "Vec", v)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v
            .as_seq()
            .ok_or_else(|| Error::expected("sequence", "array", v))?;
        if items.len() != N {
            return Err(Error(format!(
                "expected array of length {N}, got {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| Error("array length changed during parse".into()))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const LEN: usize = [$($idx),+].len();
                let items = v
                    .as_seq()
                    .ok_or_else(|| Error::expected("sequence", "tuple", v))?;
                if items.len() != LEN {
                    return Err(Error(format!(
                        "expected tuple of length {LEN}, got {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let s = String::from("hi");
        assert_eq!(String::from_value(&s.to_value()).unwrap(), "hi");
    }

    #[test]
    fn out_of_range_integer_rejected() {
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(u64::from_value(&Value::I64(-1)).is_err());
    }

    #[test]
    fn option_null_mapping() {
        assert_eq!(None::<u16>.to_value(), Value::Null);
        assert_eq!(Option::<u16>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<u16>::from_value(&Value::U64(9)).unwrap(),
            Some(9u16)
        );
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(1u32, 2.5f64), (3, 4.5)];
        assert_eq!(Vec::<(u32, f64)>::from_value(&v.to_value()).unwrap(), v);
        let arr = [10u64, 20, 30];
        assert_eq!(<[u64; 3]>::from_value(&arr.to_value()).unwrap(), arr);
        assert!(<[u64; 2]>::from_value(&arr.to_value()).is_err());
    }

    #[test]
    fn static_str_interned() {
        let a = <&'static str>::from_value(&Value::Str("GTX Titan".into())).unwrap();
        let b = <&'static str>::from_value(&Value::Str("GTX Titan".into())).unwrap();
        assert_eq!(a, "GTX Titan");
        assert!(std::ptr::eq(a, b), "repeat parses share one interned str");
    }

    #[test]
    fn map_get_reports_missing_field() {
        let v = Value::Map(vec![("a".into(), Value::U64(1))]);
        assert!(map_get(&v, "a", "T").is_ok());
        let err = map_get(&v, "b", "T").unwrap_err();
        assert!(err.0.contains("missing field `b`"));
    }
}
