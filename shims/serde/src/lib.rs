//! Offline shim for `serde`.
//!
//! The repository only ever *derives* `Serialize`/`Deserialize` to mark
//! report types; nothing serializes through serde at runtime. The shim
//! therefore exposes the two names as no-op marker traits blanket-
//! implemented for every type, and the derive macros (re-exported from
//! the shim `serde_derive`) expand to nothing. `#[derive(Serialize)]`
//! keeps compiling unchanged. See `shims/README.md`.

pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

pub trait Deserialize {}
impl<T: ?Sized> Deserialize for T {}
