//! End-to-end disk workflow: ingest → compress to disk → stream → analyze.
//!
//! The production shape of the paper's system: rasters arrive raw, are
//! compressed once into the BQ-Tree container ("15 GB TIFF → 7.3 GB"
//! in the paper), and every subsequent zonal run streams tiles straight
//! from the compressed file.
//!
//! ```text
//! cargo run --release --example disk_workflow
//! ```

use std::time::Instant;
use zonal_histo::bqtree::{compress_source, load_bq, save_bq};
use zonal_histo::geo::CountyConfig;
use zonal_histo::gpusim::DeviceSpec;
use zonal_histo::raster::io::{load_raster, save_raster};
use zonal_histo::raster::srtm::SyntheticSrtm;
use zonal_histo::raster::{GeoTransform, TileGrid};
use zonal_histo::zonal::pipeline::{run_partition, Zones};
use zonal_histo::zonal::PipelineConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = 31337;
    let dir = std::env::temp_dir().join(format!("zonal-histo-demo-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;

    // 1. "Acquire" a raster (synthetic SRTM over a 6°×4° window).
    let gt = GeoTransform::per_degree(-110.0, 36.0, 40);
    let grid = TileGrid::for_degree_tile(4 * 40, 6 * 40, 0.5, gt);
    let dem = SyntheticSrtm::new(grid.clone(), seed);
    let raster = dem.to_raster();
    println!("acquired raster: {}x{} cells", raster.rows(), raster.cols());

    // 2. Persist raw and compressed; compare sizes.
    let raw_path = dir.join("dem.zras");
    let bq_path = dir.join("dem.zbqt");
    save_raster(&raw_path, &raster)?;
    let bq = compress_source(&dem);
    save_bq(&bq_path, &bq)?;
    let raw_size = std::fs::metadata(&raw_path)?.len();
    let bq_size = std::fs::metadata(&bq_path)?.len();
    println!(
        "on disk: raw {raw_size} B vs BQ-Tree {bq_size} B ({:.1}% of raw)",
        100.0 * bq_size as f64 / raw_size as f64
    );

    // 3. Reload both and verify integrity.
    let raster_back = load_raster(&raw_path)?;
    assert_eq!(raster_back, raster, "raw container round-trips");
    let bq_back = load_bq(&bq_path)?;
    println!("reloaded both containers; raw round-trip verified");

    // 4. Run zonal histogramming straight from the compressed container
    //    (Step 0 decodes on demand, strip by strip).
    let mut county_cfg = CountyConfig::small(seed);
    county_cfg.extent = zonal_histo::geo::Mbr::new(-110.0, 36.0, -104.0, 40.0);
    county_cfg.nx = 6;
    county_cfg.ny = 4;
    let zones = Zones::new(county_cfg.generate());
    let cfg = PipelineConfig::paper(DeviceSpec::gtx_titan()).with_tile_deg(0.5);
    let t = Instant::now();
    let from_disk = run_partition(&cfg, &zones, &bq_back);
    println!(
        "pipeline from compressed container: {} cells in {:.2}s wall",
        from_disk.counts.n_cells,
        t.elapsed().as_secs_f64()
    );

    // 5. Cross-check against the in-memory source.
    let from_memory = run_partition(&cfg, &zones, &dem);
    assert_eq!(
        from_disk.hists, from_memory.hists,
        "storage must not change results"
    );
    println!(
        "results identical from disk and memory: {} cells histogrammed over {} zones",
        from_disk.hists.total(),
        zones.len()
    );

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
