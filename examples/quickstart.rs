//! Quickstart: zonal histogramming in ~40 lines.
//!
//! Builds a small synthetic county layer and DEM, runs the four-step
//! pipeline, and prints a few zone histograms and the per-step timing
//! report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Set `ZONAL_TRACE=out.json` to record the run as a Chrome trace
//! (wall-clock decode/compute lanes plus simulated-device lanes; open
//! the file in Perfetto or `chrome://tracing`). See DESIGN.md
//! §Observability.
//!
//! Set `ZONAL_SERVE=1` to also stand up the query service over the
//! same DEM and answer a few served queries — demonstrating that a
//! served answer is bit-identical to the direct pipeline run. See
//! DESIGN.md §Serving layer.

use zonal_histo::geo::CountyConfig;
use zonal_histo::gpusim::DeviceSpec;
use zonal_histo::raster::srtm::SyntheticSrtm;
use zonal_histo::raster::TileGrid;
use zonal_histo::zonal::pipeline::{run_partition, Zones};
use zonal_histo::zonal::timing::STEP_NAMES;
use zonal_histo::zonal::PipelineConfig;

fn main() {
    // 0. Optional tracing: ZONAL_TRACE=FILE records this run.
    let trace_path = std::env::var_os("ZONAL_TRACE");
    let session = trace_path
        .as_ref()
        .map(|_| zonal_histo::obs::start(zonal_histo::obs::DEFAULT_RING_CAPACITY));
    if session.is_some() {
        zonal_histo::obs::set_lane_name("main");
    }

    // 1. A zone layer: a 12×8 county-like tessellation over an 8°×6° box.
    let mut county_cfg = CountyConfig::small(42);
    county_cfg.nx = 12;
    county_cfg.ny = 8;
    let zones = Zones::new(county_cfg.generate());
    println!(
        "zones: {} polygons, {} vertices total",
        zones.len(),
        zones.layer.total_vertices()
    );

    // 2. A raster over the same extent: 60 cells/degree synthetic DEM,
    //    tiled 0.5° (30x30-cell tiles).
    let extent = county_cfg.extent;
    let rows = (extent.height() * 60.0) as usize;
    let cols = (extent.width() * 60.0) as usize;
    let gt = zonal_histo::raster::GeoTransform::per_degree(extent.min_x, extent.min_y, 60);
    let grid = TileGrid::for_degree_tile(rows, cols, 0.5, gt);
    let dem = SyntheticSrtm::new(grid, 42);

    // 3. Run the pipeline on a simulated GTX Titan.
    let cfg = PipelineConfig::paper(DeviceSpec::gtx_titan())
        .with_tile_deg(0.5)
        .with_bins(5000);
    let result = run_partition(&cfg, &zones, &dem);

    // 4. Results: histogram totals and elevation stats per zone.
    println!(
        "\ncells histogrammed: {} of {}",
        result.hists.total(),
        result.counts.n_cells
    );
    let stats = zonal_histo::zonal::zonal_statistics(&result.hists);
    println!("\nfirst five zones:");
    for (i, s) in stats.iter().take(5).enumerate() {
        println!(
            "  {}: count {:>7}  elevation min {:?} max {:?} mean {:>7.1} m",
            zones.layer.name(i),
            s.count,
            s.min,
            s.max,
            s.mean
        );
    }

    // 5. The per-step report (Table 2 shape).
    println!("\nper-step simulated seconds on {}:", cfg.device.name);
    for (name, secs) in STEP_NAMES.iter().zip(result.timings.step_sim_secs()) {
        println!("  {name:<52} {secs:>9.4}");
    }
    println!(
        "  {:<52} {:>9.4}",
        "end-to-end (with transfers)",
        result.timings.end_to_end_sim_secs()
    );

    // 6. Optional serving demo: ZONAL_SERVE=1 answers queries over the
    //    same DEM through the query service (admission → batching →
    //    cache) and checks them against the direct run above.
    if std::env::var_os("ZONAL_SERVE").is_some_and(|v| v != "0") {
        use std::sync::Arc;
        use zonal_histo::serve::{
            PartitionSource, RasterStore, ServeConfig, ZonalQuery, ZonalService,
        };
        println!("\nserved queries (ZONAL_SERVE):");
        let bq = zonal_histo::bqtree::compress_source(&dem);
        let store = Arc::new(RasterStore::new(
            Zones::new(county_cfg.generate()),
            vec![PartitionSource::new(bq)],
        ));
        let service = ZonalService::start(store, ServeConfig::new(cfg));

        let answer = service
            .query(ZonalQuery::all_zones(cfg.n_bins))
            .expect("served all-zones query");
        for z in 0..zones.len() {
            assert_eq!(
                answer.zone(z as u32).expect("row"),
                result.hists.zone(z),
                "served answer must be bit-identical to the direct run"
            );
        }
        println!("  all-zones answer matches the direct run above (bit-identical)");

        let subset = service
            .query(ZonalQuery::zone_subset(256, vec![0, 5]))
            .expect("served subset query");
        println!(
            "  {} re-binned to 256 bins: {} cells (raster version {})",
            zones.layer.name(0),
            subset.zone(0).expect("row").iter().sum::<u64>(),
            subset.raster_version
        );

        let again = service
            .query(ZonalQuery::all_zones(cfg.n_bins))
            .expect("repeat query");
        let stats = service.shutdown();
        println!(
            "  repeat query from_cache: {}; row cache hit rate {:.0}%; {} pipeline pass(es)",
            again.from_cache,
            100.0 * stats.row_cache_hit_rate(),
            stats.pipeline_passes
        );
    }

    // 7. Export the trace, wall lanes plus the cost model's simulated
    //    device timeline (cell_factor 1.0: no full-scale extrapolation).
    if let (Some(path), Some(session)) = (trace_path, session) {
        let mut trace = session.finish();
        trace.push_sim_spans(result.timings.sim_device_spans(1.0));
        std::fs::write(&path, trace.to_chrome_json()).expect("write ZONAL_TRACE file");
        println!(
            "\nchrome trace written to {} ({} events; open in Perfetto or chrome://tracing)",
            path.to_string_lossy(),
            trace.events.len()
        );
    }
}
