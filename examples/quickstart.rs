//! Quickstart: zonal histogramming in ~40 lines.
//!
//! Builds a small synthetic county layer and DEM, runs the four-step
//! pipeline, and prints a few zone histograms and the per-step timing
//! report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Set `ZONAL_TRACE=out.json` to record the run as a Chrome trace
//! (wall-clock decode/compute lanes plus simulated-device lanes; open
//! the file in Perfetto or `chrome://tracing`). See DESIGN.md
//! §Observability.

use zonal_histo::geo::CountyConfig;
use zonal_histo::gpusim::DeviceSpec;
use zonal_histo::raster::srtm::SyntheticSrtm;
use zonal_histo::raster::TileGrid;
use zonal_histo::zonal::pipeline::{run_partition, Zones};
use zonal_histo::zonal::timing::STEP_NAMES;
use zonal_histo::zonal::PipelineConfig;

fn main() {
    // 0. Optional tracing: ZONAL_TRACE=FILE records this run.
    let trace_path = std::env::var_os("ZONAL_TRACE");
    let session = trace_path
        .as_ref()
        .map(|_| zonal_histo::obs::start(zonal_histo::obs::DEFAULT_RING_CAPACITY));
    if session.is_some() {
        zonal_histo::obs::set_lane_name("main");
    }

    // 1. A zone layer: a 12×8 county-like tessellation over an 8°×6° box.
    let mut county_cfg = CountyConfig::small(42);
    county_cfg.nx = 12;
    county_cfg.ny = 8;
    let zones = Zones::new(county_cfg.generate());
    println!(
        "zones: {} polygons, {} vertices total",
        zones.len(),
        zones.layer.total_vertices()
    );

    // 2. A raster over the same extent: 60 cells/degree synthetic DEM,
    //    tiled 0.5° (30x30-cell tiles).
    let extent = county_cfg.extent;
    let rows = (extent.height() * 60.0) as usize;
    let cols = (extent.width() * 60.0) as usize;
    let gt = zonal_histo::raster::GeoTransform::per_degree(extent.min_x, extent.min_y, 60);
    let grid = TileGrid::for_degree_tile(rows, cols, 0.5, gt);
    let dem = SyntheticSrtm::new(grid, 42);

    // 3. Run the pipeline on a simulated GTX Titan.
    let cfg = PipelineConfig::paper(DeviceSpec::gtx_titan())
        .with_tile_deg(0.5)
        .with_bins(5000);
    let result = run_partition(&cfg, &zones, &dem);

    // 4. Results: histogram totals and elevation stats per zone.
    println!(
        "\ncells histogrammed: {} of {}",
        result.hists.total(),
        result.counts.n_cells
    );
    let stats = zonal_histo::zonal::zonal_statistics(&result.hists);
    println!("\nfirst five zones:");
    for (i, s) in stats.iter().take(5).enumerate() {
        println!(
            "  {}: count {:>7}  elevation min {:?} max {:?} mean {:>7.1} m",
            zones.layer.name(i),
            s.count,
            s.min,
            s.max,
            s.mean
        );
    }

    // 5. The per-step report (Table 2 shape).
    println!("\nper-step simulated seconds on {}:", cfg.device.name);
    for (name, secs) in STEP_NAMES.iter().zip(result.timings.step_sim_secs()) {
        println!("  {name:<52} {secs:>9.4}");
    }
    println!(
        "  {:<52} {:>9.4}",
        "end-to-end (with transfers)",
        result.timings.end_to_end_sim_secs()
    );

    // 6. Export the trace, wall lanes plus the cost model's simulated
    //    device timeline (cell_factor 1.0: no full-scale extrapolation).
    if let (Some(path), Some(session)) = (trace_path, session) {
        let mut trace = session.finish();
        trace.push_sim_spans(result.timings.sim_device_spans(1.0));
        std::fs::write(&path, trace.to_chrome_json()).expect("write ZONAL_TRACE file");
        println!(
            "\nchrome trace written to {} ({} events; open in Perfetto or chrome://tracing)",
            path.to_string_lossy(),
            trace.events.len()
        );
    }
}
