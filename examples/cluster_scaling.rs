//! Cluster scaling (the paper's Fig. 6 on your machine).
//!
//! Runs the simulated GPU-accelerated cluster at a range of node counts,
//! verifying that every configuration computes the identical answer, and
//! prints the scaling curve with load-imbalance diagnostics.
//!
//! ```text
//! cargo run --release --example cluster_scaling [cells_per_degree]
//! ```

use zonal_histo::cluster::{run_scaling, Assignment, ClusterConfig};
use zonal_histo::geo::CountyConfig;
use zonal_histo::zonal::pipeline::Zones;

fn main() {
    let cpd: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(20);
    let seed = 7;
    let zones = Zones::new(CountyConfig::us_like(seed).generate());
    println!(
        "{} zones over the 36-partition catalog at {cpd} cells/degree\n",
        zones.len()
    );

    let base = ClusterConfig::titan(1, cpd, seed);
    let points = run_scaling(&base, &zones, &[1, 2, 4, 8, 16]).expect("scaling sweep");

    println!(
        "{:>7} {:>14} {:>9} {:>11} {:>11} {:>10}",
        "nodes", "sim secs", "speedup", "comm secs", "combine s", "max/mean"
    );
    let t1 = points[0].0.sim_secs;
    for (p, run) in &points {
        println!(
            "{:>7} {:>14.3} {:>8.2}x {:>11.4} {:>11.4} {:>10.2}",
            p.n_nodes,
            p.sim_secs,
            t1 / p.sim_secs,
            run.comm_secs,
            run.combine_secs,
            p.imbalance_ratio
        );
    }

    // The §IV.C story: which nodes got the coverage-edge partitions?
    let (_, run16) = points.last().expect("at least one point");
    println!(
        "\nper-node Step-4 edge tests at {} nodes:",
        run16.nodes.len()
    );
    for n in &run16.nodes {
        let bar = "#".repeat(
            (n.edge_tests / (1 + run16.nodes.iter().map(|m| m.edge_tests).max().unwrap_or(1) / 40))
                as usize,
        );
        println!("  node {:>2}: {:>12}  {}", n.rank, n.edge_tests, bar);
    }

    // Balanced assignment ablation.
    let mut bal = ClusterConfig::titan(16, cpd, seed);
    bal.assignment = Assignment::BalancedByCells;
    let bal_run = zonal_histo::cluster::run_cluster(&bal, &zones).expect("balanced run");
    println!(
        "\n16-node assignment: round-robin max/mean {:.2} vs balanced-by-cells {:.2}",
        run16.imbalance.max_over_mean, bal_run.imbalance.max_over_mean
    );
    assert_eq!(
        run16.hists, bal_run.hists,
        "assignment must not change the answer"
    );
}
