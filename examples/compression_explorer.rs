//! BQ-Tree compression explorer (the paper's §IV.B storage layer).
//!
//! Encodes synthetic SRTM tiles at several tile sizes and terrain regimes,
//! showing where the bitplane-quadtree idea wins (smooth high planes
//! collapse to single nodes) and where it loses (noise), plus the PCIe
//! transfer-time argument the paper makes for compressing at all.
//!
//! ```text
//! cargo run --release --example compression_explorer
//! ```

use zonal_histo::bqtree::{decode_tile, encode_tile};
use zonal_histo::raster::srtm::elevation;
use zonal_histo::raster::TileData;

fn dem_tile(side: usize, lon0: f64, lat0: f64, cells_per_degree: f64, seed: u64) -> TileData {
    let step = 1.0 / cells_per_degree;
    let values = (0..side * side)
        .map(|i| {
            let (r, c) = (i / side, i % side);
            elevation(seed, lon0 + c as f64 * step, lat0 + r as f64 * step)
        })
        .collect();
    TileData::new(values, side, side)
}

fn main() {
    let seed = 20140519;
    println!("== tile size sweep (mountainous CONUS interior, native 3600 c/deg) ==");
    println!(
        "{:>8} {:>12} {:>12} {:>8}",
        "side", "raw B", "encoded B", "ratio"
    );
    for side in [16usize, 64, 128, 256, 360, 512] {
        let tile = dem_tile(side, -106.0, 39.0, 3600.0, seed);
        let enc = encode_tile(&tile);
        assert_eq!(decode_tile(&enc), tile, "lossless round-trip");
        let raw = side * side * 2;
        println!(
            "{:>8} {:>12} {:>12} {:>7.1}%",
            side,
            raw,
            enc.len(),
            100.0 * enc.len() as f64 / raw as f64
        );
    }

    println!("\n== terrain regimes (360x360 native tiles) ==");
    let regimes: [(&str, f64, f64); 4] = [
        ("ocean (all no-data)", -124.9, 24.05),
        ("coastal mix", -122.0, 36.0),
        ("plains", -98.0, 41.0),
        ("mountains", -106.0, 39.0),
    ]
    .map(|(n, lon, lat)| (n, lon, lat));
    for (name, lon, lat) in regimes {
        let tile = dem_tile(360, lon, lat, 3600.0, seed);
        let enc = encode_tile(&tile);
        let nodata = tile
            .values
            .iter()
            .filter(|&&v| v == zonal_histo::raster::NODATA)
            .count();
        println!(
            "{:<22} encoded {:>7} B ({:>5.1}% of raw), {:>5.1}% no-data",
            name,
            enc.len(),
            100.0 * enc.len() as f64 / (360.0 * 360.0 * 2.0),
            100.0 * nodata as f64 / (360.0 * 360.0)
        );
    }

    println!("\n== the transfer argument (paper §IV.B) ==");
    // Sample the native ratio over CONUS and price the full raster's PCIe
    // transfer both ways.
    let mut raw = 0u64;
    let mut enc = 0u64;
    for k in 0..16 {
        let tile = dem_tile(
            360,
            -120.0 + (k % 4) as f64 * 12.0,
            27.0 + (k / 4) as f64 * 5.0,
            3600.0,
            seed,
        );
        raw += (tile.len() * 2) as u64;
        enc += encode_tile(&tile).len() as u64;
    }
    let ratio = enc as f64 / raw as f64;
    let full_raw_gb = 20_165_760_000.0 * 2.0 / 1e9;
    let pcie = 2.5; // GB/s, the paper's assumed sustained rate
    println!("sampled native ratio: {:.1}% of raw", ratio * 100.0);
    println!(
        "full 20.1-Gcell raster over PCIe at {pcie} GB/s: raw {:.1}s vs compressed {:.1}s",
        full_raw_gb / pcie,
        full_raw_gb * ratio / pcie
    );
    println!(
        "(the paper: 40 GB -> 7.3 GB turns ~16s of transfer into ~3s, offsetting decode cost)"
    );
}
