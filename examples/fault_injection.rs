//! Fault injection: an 8-node cluster run that survives two node crashes
//! plus a lost and a corrupted result message, and still produces the
//! exact fault-free histograms.
//!
//! ```text
//! cargo run --release --example fault_injection [cells_per_degree]
//! ```

use zonal_histo::cluster::{run_cluster, ClusterConfig, FaultPlan, RecoveryPolicy};
use zonal_histo::geo::CountyConfig;
use zonal_histo::zonal::pipeline::Zones;

fn main() {
    let cpd: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(10);
    let seed = 7;
    let zones = Zones::new(CountyConfig::us_like(seed).generate());

    // Reference: a clean 8-node run.
    let mut clean_cfg = ClusterConfig::titan(8, cpd, seed);
    clean_cfg.detect_timeout_secs = 0.5;
    let clean = run_cluster(&clean_cfg, &zones).expect("fault-free run");
    println!(
        "fault-free 8-node run: sim {:.2}s (comm {:.4}s), {} zones",
        clean.sim_secs,
        clean.comm_secs,
        clean.hists.n_zones()
    );

    // Chaos: node 3 dies after one partition, node 6 dies before doing any
    // work, node 1's result message is lost, node 5's arrives corrupted.
    let plan = FaultPlan::none()
        .with_crash(3, 1)
        .with_crash(6, 0)
        .with_drop(1)
        .with_corrupt(5);
    let mut cfg = clean_cfg.clone();
    cfg.faults = plan;
    cfg.recovery = RecoveryPolicy::Reassign;

    println!("\ninjecting: crash(3 after 1 part), crash(6 at start), drop(1), corrupt(5)");
    let run = run_cluster(&cfg, &zones).expect("recovered run");

    println!(
        "survived: crashed ranks {:?}, {} retransmission(s)",
        run.failed_ranks, run.retransmits
    );
    println!(
        "cost of resilience: sim {:.2}s = compute+comm {:.2}s + recovery {:.2}s",
        run.sim_secs,
        run.sim_secs - run.recovery_secs,
        run.recovery_secs
    );
    for n in &run.nodes {
        println!(
            "  node {:>2}: {:>2} partition(s){}",
            n.rank,
            n.n_partitions,
            if n.failed {
                "  [crashed; share reassigned]"
            } else {
                ""
            }
        );
    }

    assert_eq!(
        run.hists, clean.hists,
        "recovered result must be bit-identical"
    );
    println!("\ncombined histograms are bit-identical to the fault-free run ✓");

    // The same plan under FailFast aborts with a typed error instead.
    let mut ff = cfg.clone();
    ff.recovery = RecoveryPolicy::FailFast;
    match run_cluster(&ff, &zones) {
        Err(e) => println!("same plan under FailFast: Err({e})"),
        Ok(_) => unreachable!("FailFast cannot survive a crash plan"),
    }
}
