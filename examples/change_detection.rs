//! Temporal change detection over a GOES-R-style observation stream.
//!
//! The paper's introduction motivates zonal histogramming with streaming
//! weather-satellite rasters and with using the histograms "as feature
//! vectors for more sophisticated analysis, such as computing various
//! distance measurements which can be used for subsequent clustering".
//! This example runs that whole chain:
//!
//! 1. zonal histograms per zone per epoch over an evolving synthetic field;
//! 2. per-zone change series under the Jensen–Shannon distance;
//! 3. z-score anomaly flagging ("which zones changed abruptly, when?");
//! 4. k-medoids clustering of zones into regimes by their mean histogram.
//!
//! ```text
//! cargo run --release --example change_detection [n_epochs]
//! ```

use zonal_histo::geo::CountyConfig;
use zonal_histo::gpusim::DeviceSpec;
use zonal_histo::raster::timeseries::{EpochSource, MAX_FIELD};
use zonal_histo::raster::{GeoTransform, TileGrid};
use zonal_histo::zonal::distance::Measure;
use zonal_histo::zonal::pipeline::Zones;
use zonal_histo::zonal::temporal::{detect_anomalies, run_epochs};
use zonal_histo::zonal::zone_cluster::kmedoids;
use zonal_histo::zonal::{PipelineConfig, ZoneHistograms};

fn main() {
    let n_epochs: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(12);
    let seed = 99;

    // Zones: a coarse county layer over CONUS.
    let mut county_cfg = CountyConfig::us_like(seed);
    county_cfg.nx = 16;
    county_cfg.ny = 12;
    county_cfg.edge_subdiv = 3;
    let zones = Zones::new(county_cfg.generate());

    // Raster geometry: CONUS at 12 cells/degree, 0.5° tiles.
    let extent = county_cfg.extent;
    let cpd = 12u32;
    let gt = GeoTransform::per_degree(extent.min_x, extent.min_y, cpd);
    let rows = (extent.height() * cpd as f64).round() as usize;
    let cols = (extent.width() * cpd as f64).round() as usize;

    let cfg = PipelineConfig::paper(DeviceSpec::gtx_titan())
        .with_tile_deg(0.5)
        .with_bins(MAX_FIELD as usize + 1);

    println!(
        "{} zones × {n_epochs} epochs over {} cells each…",
        zones.len(),
        rows * cols
    );
    let result = run_epochs(&cfg, &zones, n_epochs, |epoch| {
        EpochSource::new(TileGrid::for_degree_tile(rows, cols, 0.5, gt), seed, epoch)
    });

    // Change analysis.
    let series = result.change_series(Measure::JensenShannon);
    let events = detect_anomalies(&series, 2.0);
    println!("\ntop change events (z > 2.0 within each zone's own history):");
    for e in events.iter().take(10) {
        println!(
            "  {}: epochs {}->{}  JS distance {:.3}  z {:.1}",
            zones.layer.name(e.zone),
            e.t,
            e.t + 1,
            e.distance,
            e.z_score
        );
    }
    if events.is_empty() {
        println!("  (none above threshold — the field evolved smoothly)");
    }

    // Regime clustering on time-mean histograms.
    let mut mean = ZoneHistograms::new(zones.len(), cfg.n_bins);
    for epoch in &result.epochs {
        mean.merge(epoch);
    }
    let k = 4;
    let clustering = kmedoids(&mean, k, Measure::Emd1d, seed, 30);
    println!("\n{k} field regimes (k-medoids on time-mean histograms, EMD):");
    for c in 0..k {
        let members = clustering.members(c);
        let medoid = clustering.medoids[c];
        let m_hist = mean.zone(medoid);
        let total: u64 = m_hist.iter().sum();
        let mean_val: f64 = m_hist
            .iter()
            .enumerate()
            .map(|(v, &n)| v as f64 * n as f64)
            .sum::<f64>()
            / total.max(1) as f64;
        println!(
            "  regime {c}: {:>3} zones, medoid {} (mean field value {:.0})",
            members.len(),
            zones.layer.name(medoid),
            mean_val
        );
    }
    println!(
        "\ntotal clustering cost: {:.3} ({} iterations)",
        clustering.total_cost, clustering.iterations
    );
}
