//! County elevation profiles: the paper's headline workload, scaled down.
//!
//! Reproduces the paper's experiment shape end to end — a ~3,100-zone
//! US-county-like layer over the full six-raster CONUS catalog, streamed
//! through BQ-Tree compression — then mines the per-county histograms the
//! way the paper's introduction motivates: summary statistics, quantiles,
//! and the highest/flattest counties.
//!
//! ```text
//! cargo run --release --example county_elevation [cells_per_degree]
//! ```
//!
//! Default resolution is 30 cells/degree (≈1/120 of SRTM's 3600); raise it
//! for fidelity, at quadratic cost.

use zonal_histo::geo::CountyConfig;
use zonal_histo::gpusim::DeviceSpec;
use zonal_histo::raster::srtm::{SrtmCatalog, SyntheticSrtm};
use zonal_histo::zonal::pipeline::{run_partition, Zones};
use zonal_histo::zonal::stats::histogram_quantile;
use zonal_histo::zonal::{zonal_statistics, PipelineConfig};

fn main() {
    let cpd: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(30);
    let seed = 20140519;

    println!("generating US-like county layer…");
    let zones = Zones::new(CountyConfig::us_like(seed).generate());
    println!(
        "  {} counties, {} vertices, {} multi-ring",
        zones.len(),
        zones.layer.total_vertices(),
        zones.layer.multi_ring_count()
    );

    let catalog = SrtmCatalog::new(cpd);
    println!(
        "processing the {}-partition catalog at {cpd} cells/degree ({} cells)…",
        catalog.n_partitions(),
        catalog.total_cells()
    );
    let cfg = PipelineConfig::paper(DeviceSpec::gtx_titan());
    let mut merged: Option<zonal_histo::zonal::pipeline::ZonalResult> = None;
    for part in catalog.partitions() {
        let src = SyntheticSrtm::new(part.grid(cfg.tile_deg), seed);
        let r = run_partition(&cfg, &zones, &src);
        match &mut merged {
            None => merged = Some(r),
            Some(m) => m.merge(&r),
        }
    }
    let result = merged.expect("catalog is nonempty");
    println!(
        "  {} of {} cells histogrammed ({} no-data), {:.1}% PIP-tested",
        result.hists.total(),
        result.counts.n_cells,
        result.counts.n_nodata_cells,
        100.0 * result.counts.pip_fraction()
    );

    // Zonal statistics table (the classic GIS product).
    let stats = zonal_statistics(&result.hists);

    let highest = stats
        .iter()
        .enumerate()
        .filter(|(_, s)| s.count > 0)
        .max_by(|a, b| a.1.mean.total_cmp(&b.1.mean))
        .expect("some county has cells");
    println!(
        "\nhighest county: {} (mean {:.0} m, max {:?} m, {} cells)",
        zones.layer.name(highest.0),
        highest.1.mean,
        highest.1.max,
        highest.1.count
    );

    let flattest = stats
        .iter()
        .enumerate()
        .filter(|(_, s)| s.count > 1000)
        .min_by(|a, b| a.1.std_dev.total_cmp(&b.1.std_dev))
        .expect("some county has cells");
    println!(
        "flattest county: {} (σ {:.1} m over {} cells)",
        zones.layer.name(flattest.0),
        flattest.1.std_dev,
        flattest.1.count
    );

    // Per-county elevation quantiles from the histograms — no second pass
    // over the raster needed.
    println!("\nsample county elevation profiles (m):");
    println!(
        "{:<16} {:>9} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "county", "cells", "p10", "p25", "p50", "p75", "p90"
    );
    for z in (0..zones.len()).step_by(zones.len() / 8) {
        let bins = result.hists.zone(z);
        let count: u64 = bins.iter().sum();
        if count == 0 {
            continue;
        }
        let q = |p| histogram_quantile(bins, p).map(|v| v as i64).unwrap_or(-1);
        println!(
            "{:<16} {:>9} {:>7} {:>7} {:>7} {:>7} {:>7}",
            zones.layer.name(z),
            count,
            q(0.10),
            q(0.25),
            q(0.50),
            q(0.75),
            q(0.90)
        );
    }
}
