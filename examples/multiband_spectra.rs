//! Multi-band zonal analysis (the GOES-R 16-band scenario from the intro).
//!
//! Runs zonal histogramming over several spectral "bands" (epochs of the
//! synthetic field standing in for bands), builds the per-zone band-mean
//! feature matrix, stacks the per-band histograms into one feature vector
//! per zone, and clusters zones into spectral classes.
//!
//! ```text
//! cargo run --release --example multiband_spectra [n_bands]
//! ```

use zonal_histo::geo::CountyConfig;
use zonal_histo::gpusim::DeviceSpec;
use zonal_histo::raster::timeseries::{EpochSource, MAX_FIELD};
use zonal_histo::raster::{GeoTransform, TileGrid};
use zonal_histo::zonal::distance::Measure;
use zonal_histo::zonal::multiband::run_bands;
use zonal_histo::zonal::pipeline::Zones;
use zonal_histo::zonal::zone_cluster::kmedoids;
use zonal_histo::zonal::PipelineConfig;

fn main() {
    let n_bands: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(6);
    let seed = 1234;

    let mut county_cfg = CountyConfig::us_like(seed);
    county_cfg.nx = 12;
    county_cfg.ny = 9;
    county_cfg.edge_subdiv = 2;
    let zones = Zones::new(county_cfg.generate());

    let extent = county_cfg.extent;
    let cpd = 10u32;
    let gt = GeoTransform::per_degree(extent.min_x, extent.min_y, cpd);
    let rows = (extent.height() * cpd as f64).round() as usize;
    let cols = (extent.width() * cpd as f64).round() as usize;
    let cfg = PipelineConfig::paper(DeviceSpec::gtx_titan())
        .with_tile_deg(0.5)
        .with_bins(MAX_FIELD as usize + 1);

    // Bands: widely spaced epochs of the synthetic field (each uses its
    // own keyframe family, so bands are decorrelated like real spectra).
    println!("{} zones × {n_bands} bands…", zones.len());
    let sources: Vec<EpochSource> = (0..n_bands)
        .map(|b| EpochSource::new(TileGrid::for_degree_tile(rows, cols, 0.5, gt), seed, b * 16))
        .collect();
    let result = run_bands(&cfg, &zones, &sources);

    // The classic feature matrix: mean value per zone per band.
    let means = result.band_means();
    println!("\nband-mean matrix (first 6 zones):");
    print!("{:<16}", "zone");
    for b in 0..result.n_bands() {
        print!(" {:>8}", format!("band{b}"));
    }
    println!();
    for (z, row) in means.iter().enumerate().take(6.min(zones.len())) {
        print!("{:<16}", zones.layer.name(z));
        for m in row {
            print!(" {:>8.1}", m);
        }
        println!();
    }

    // Spectral classes via k-medoids over stacked band histograms.
    let stacked = result.concat_bands();
    let k = 4;
    let clustering = kmedoids(&stacked, k, Measure::ChiSquare, seed, 25);
    println!("\n{k} spectral classes (k-medoids, chi-square over stacked bands):");
    for c in 0..k {
        let members = clustering.members(c);
        // Class centroid in band-mean space, for interpretability.
        let mut centroid = vec![0.0f64; result.n_bands()];
        let mut n = 0usize;
        for &z in &members {
            if means[z].iter().all(|m| m.is_finite()) {
                for (acc, m) in centroid.iter_mut().zip(&means[z]) {
                    *acc += m;
                }
                n += 1;
            }
        }
        for acc in &mut centroid {
            *acc /= n.max(1) as f64;
        }
        println!(
            "  class {c}: {:>3} zones, band means {:?}",
            members.len(),
            centroid.iter().map(|m| m.round()).collect::<Vec<_>>()
        );
    }
}
