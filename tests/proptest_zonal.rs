//! Property tests for the full pipeline: random zone layers and random
//! rasters, pinned against the scanline reference.

use proptest::prelude::*;
use zonal_histo::geo::{Point, Polygon, PolygonLayer, Ring};
use zonal_histo::gpusim::DeviceSpec;
use zonal_histo::raster::{GeoTransform, Raster, TileGrid};
use zonal_histo::zonal::pipeline::{run_partition, Zones};
use zonal_histo::zonal::stats::stats_of_histogram;
use zonal_histo::zonal::{baseline, PipelineConfig};

/// Random layer of disjoint-ish circles and rectangles inside [0,8]×[0,6].
/// Overlap is allowed — zonal histogramming is defined per zone, so zones
/// may double-count cells without breaking any invariant checked here.
fn layer_strategy() -> impl Strategy<Value = PolygonLayer> {
    prop::collection::vec(
        (
            0.5f64..7.5,
            0.5f64..5.5,
            0.2f64..1.4,
            3usize..24,
            prop::bool::ANY,
        ),
        1..6,
    )
    .prop_map(|shapes| {
        PolygonLayer::from_polygons(
            shapes
                .into_iter()
                .map(|(cx, cy, r, n, circle)| {
                    if circle {
                        Polygon::from_ring(Ring::circle(Point::new(cx, cy), r, n.max(3)))
                    } else {
                        Polygon::rect(cx - r, cy - r * 0.7, cx + r, cy + r * 0.7)
                    }
                })
                .collect(),
        )
    })
}

fn raster_strategy() -> impl Strategy<Value = Raster> {
    (10usize..60, 10usize..80, any::<u64>()).prop_map(|(rows, cols, seed)| {
        let gt = GeoTransform::new(0.0, 0.0, 8.0 / cols as f64, 6.0 / rows as f64);
        Raster::from_fn(rows, cols, gt, move |r, c| {
            // Cheap deterministic hash-valued cells in 0..200.
            let h = (r as u64)
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add(c as u64)
                .wrapping_mul(seed | 1);
            ((h >> 33) % 200) as u16
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn pipeline_equals_scanline_on_random_workloads(
        layer in layer_strategy(),
        raster in raster_strategy(),
        tile_cells in 3usize..12,
    ) {
        let zones = Zones::new(layer);
        let grid = TileGrid::new(raster.rows(), raster.cols(), tile_cells, *raster.transform());
        let mut cfg = PipelineConfig::paper(DeviceSpec::gtx_titan()).with_bins(256);
        cfg.tile_deg = tile_cells as f64 * raster.transform().sx; // match grid
        let pipe = run_partition(&cfg, &zones, &raster.tile_source(&grid));
        let scan = baseline::scanline_serial(&zones.layer, &raster, cfg.n_bins);
        prop_assert_eq!(pipe.hists, scan);
    }

    #[test]
    fn counts_are_internally_consistent(
        layer in layer_strategy(),
        raster in raster_strategy(),
    ) {
        let zones = Zones::new(layer);
        let grid = TileGrid::new(raster.rows(), raster.cols(), 8, *raster.transform());
        let mut cfg = PipelineConfig::paper(DeviceSpec::gtx_titan()).with_bins(256);
        cfg.tile_deg = 8.0 * raster.transform().sx;
        let r = run_partition(&cfg, &zones, &raster.tile_source(&grid));
        prop_assert_eq!(r.counts.n_cells, (raster.rows() * raster.cols()) as u64);
        prop_assert!(r.counts.pip_cells_inside <= r.counts.pip_cells_tested);
        prop_assert!(r.counts.n_valid_cells <= r.counts.n_cells);
        // Inside-pair cells + PIP-inside cells ≥ total counted (each counted
        // cell came from one of the two paths; zones may overlap).
        prop_assert!(r.counts.edge_tests >= r.counts.pip_cells_tested);
    }

    #[test]
    fn overlapped_executor_equals_serial_on_random_workloads(
        layer in layer_strategy(),
        raster in raster_strategy(),
        tile_cells in 3usize..12,
        strip_rows in 1usize..4,
        inflight in 2usize..5,
    ) {
        let zones = Zones::new(layer);
        let grid = TileGrid::new(raster.rows(), raster.cols(), tile_cells, *raster.transform());
        let mut cfg = PipelineConfig::paper(DeviceSpec::gtx_titan()).with_bins(256);
        cfg.tile_deg = tile_cells as f64 * raster.transform().sx; // match grid
        cfg.strip_rows = strip_rows;
        let src = raster.tile_source(&grid);
        cfg.inflight_strips = 1; // serial reference executor
        let serial = run_partition(&cfg, &zones, &src);
        cfg.inflight_strips = inflight; // double-buffered streaming executor
        let overlapped = run_partition(&cfg, &zones, &src);
        prop_assert_eq!(&serial.hists, &overlapped.hists);
        prop_assert_eq!(&serial.counts, &overlapped.counts);
        // Same strips in the same order, with identical counted work.
        prop_assert_eq!(&serial.timings.strips, &overlapped.timings.strips);
        for (a, b) in serial.timings.steps.iter().zip(&overlapped.timings.steps) {
            prop_assert_eq!(a.cell_work, b.cell_work);
            prop_assert_eq!(a.fixed_work, b.fixed_work);
        }
    }

    #[test]
    fn stats_match_expanded_values(bins in prop::collection::vec(0u64..50, 1..100)) {
        let s = stats_of_histogram(&bins);
        let mut values: Vec<f64> = Vec::new();
        for (v, &c) in bins.iter().enumerate() {
            values.extend(std::iter::repeat_n(v as f64, c as usize));
        }
        if values.is_empty() {
            prop_assert_eq!(s.count, 0);
        } else {
            let n = values.len() as f64;
            let mean = values.iter().sum::<f64>() / n;
            let var = values.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
            prop_assert_eq!(s.count as usize, values.len());
            prop_assert!((s.mean - mean).abs() < 1e-9);
            prop_assert!((s.std_dev - var.sqrt()).abs() < 1e-9);
            let lower_median = values[(values.len() - 1) / 2];
            prop_assert_eq!(s.median, Some(lower_median as u16));
        }
    }
}
