//! Distribution invariance: the cluster must compute exactly what a single
//! node computes, for any node count, assignment policy, or strip size.

use zonal_histo::cluster::{run_cluster, Assignment, ClusterConfig};
use zonal_histo::geo::CountyConfig;
use zonal_histo::zonal::pipeline::Zones;

const SEED: u64 = 77;

fn zones() -> Zones {
    let mut cfg = CountyConfig::us_like(SEED);
    cfg.nx = 12;
    cfg.ny = 8;
    cfg.edge_subdiv = 2;
    Zones::new(cfg.generate())
}

fn cfg(n: usize) -> ClusterConfig {
    let mut c = ClusterConfig::titan(n, 6, SEED);
    c.pipeline.tile_deg = 1.0;
    c.pipeline.n_bins = 256;
    c
}

#[test]
fn all_node_counts_agree() {
    let zones = zones();
    let reference = run_cluster(&cfg(1), &zones);
    for n in [2usize, 3, 5, 8, 16, 36] {
        let run = run_cluster(&cfg(n), &zones);
        assert_eq!(run.hists, reference.hists, "{n} nodes");
        assert_eq!(
            run.nodes.iter().map(|r| r.n_cells).sum::<u64>(),
            reference.nodes[0].n_cells,
            "{n} nodes process the same cells"
        );
    }
}

#[test]
fn assignment_policies_agree() {
    let zones = zones();
    let rr = run_cluster(&cfg(8), &zones);
    let mut bcfg = cfg(8);
    bcfg.assignment = Assignment::BalancedByCells;
    let bal = run_cluster(&bcfg, &zones);
    assert_eq!(rr.hists, bal.hists);
}

#[test]
fn master_combine_is_linear() {
    // The master-side merge must be associative/commutative: histograms
    // combined in any node order are identical. Exercised implicitly by
    // thread scheduling; pin it with different node counts whose gather
    // orders differ.
    let zones = zones();
    let a = run_cluster(&cfg(4), &zones);
    let b = run_cluster(&cfg(4), &zones);
    assert_eq!(a.hists, b.hists, "combine order must not matter");
}

#[test]
fn reports_complete_and_consistent() {
    let zones = zones();
    let run = run_cluster(&cfg(5), &zones);
    assert_eq!(run.nodes.len(), 5);
    for (rank, r) in run.nodes.iter().enumerate() {
        assert_eq!(r.rank, rank);
    }
    assert_eq!(run.nodes.iter().map(|r| r.n_partitions).sum::<usize>(), 36);
    assert!(run.sim_secs >= run.nodes.iter().map(|r| r.sim_secs).fold(0.0, f64::max));
    assert!(run.comm_secs > 0.0);
}
