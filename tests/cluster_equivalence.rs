//! Distribution invariance: the cluster must compute exactly what a single
//! node computes, for any node count, assignment policy, or strip size —
//! and, under a recovering policy, for any survivable fault plan.

use proptest::prelude::*;
use zonal_histo::cluster::{
    run_cluster, run_dynamic, Assignment, ClusterConfig, FaultPlan, RecoveryPolicy,
};
use zonal_histo::geo::CountyConfig;
use zonal_histo::zonal::pipeline::Zones;

const SEED: u64 = 77;

fn zones() -> &'static Zones {
    static Z: std::sync::OnceLock<Zones> = std::sync::OnceLock::new();
    Z.get_or_init(|| {
        let mut cfg = CountyConfig::us_like(SEED);
        cfg.nx = 12;
        cfg.ny = 8;
        cfg.edge_subdiv = 2;
        Zones::new(cfg.generate())
    })
}

fn cfg(n: usize) -> ClusterConfig {
    let mut c = ClusterConfig::titan(n, 6, SEED);
    c.pipeline.tile_deg = 1.0;
    c.pipeline.n_bins = 256;
    c
}

/// Small, fast configuration for the chaos property (many runs per case).
fn chaos_cfg(n: usize) -> ClusterConfig {
    let mut c = ClusterConfig::titan(n, 4, SEED);
    c.pipeline.tile_deg = 1.0;
    c.pipeline.n_bins = 64;
    c.detect_timeout_secs = 0.3;
    c
}

#[test]
fn all_node_counts_agree() {
    let zones = zones();
    let reference = run_cluster(&cfg(1), zones).unwrap();
    // One even, one odd, one that divides 36, and the 1-partition-per-node
    // extreme — enough to pin distribution invariance without sweeping
    // every count.
    for n in [2usize, 5, 12, 36] {
        let run = run_cluster(&cfg(n), zones).unwrap();
        assert_eq!(run.hists, reference.hists, "{n} nodes");
        assert_eq!(
            run.nodes.iter().map(|r| r.n_cells).sum::<u64>(),
            reference.nodes[0].n_cells,
            "{n} nodes process the same cells"
        );
    }
}

#[test]
fn assignment_policies_agree() {
    let zones = zones();
    let rr = run_cluster(&cfg(8), zones).unwrap();
    let mut bcfg = cfg(8);
    bcfg.assignment = Assignment::BalancedByCells;
    let bal = run_cluster(&bcfg, zones).unwrap();
    assert_eq!(rr.hists, bal.hists);
}

#[test]
fn master_combine_is_linear() {
    // The master-side merge must be associative/commutative: histograms
    // combined in any node order are identical. Exercised implicitly by
    // thread scheduling; pin it with different node counts whose gather
    // orders differ.
    let zones = zones();
    let a = run_cluster(&cfg(4), zones).unwrap();
    let b = run_cluster(&cfg(4), zones).unwrap();
    assert_eq!(a.hists, b.hists, "combine order must not matter");
}

#[test]
fn reports_complete_and_consistent() {
    let zones = zones();
    let run = run_cluster(&cfg(5), zones).unwrap();
    assert_eq!(run.nodes.len(), 5);
    for (rank, r) in run.nodes.iter().enumerate() {
        assert_eq!(r.rank, rank);
    }
    assert_eq!(run.nodes.iter().map(|r| r.n_partitions).sum::<usize>(), 36);
    assert!(run.sim_secs >= run.nodes.iter().map(|r| r.sim_secs).fold(0.0, f64::max));
    assert!(run.comm_secs > 0.0);
}

/// Fault-free reference histograms for the chaos property, memoized per
/// node count: the reference depends only on `n`, so the proptest cases
/// reuse it instead of re-running a clean cluster each time.
fn clean_hists(n: usize) -> &'static zonal_histo::zonal::ZoneHistograms {
    use std::sync::OnceLock;
    static CLEAN: [OnceLock<zonal_histo::zonal::ZoneHistograms>; 6] = [
        OnceLock::new(),
        OnceLock::new(),
        OnceLock::new(),
        OnceLock::new(),
        OnceLock::new(),
        OnceLock::new(),
    ];
    CLEAN[n].get_or_init(|| run_cluster(&chaos_cfg(n), zones()).unwrap().hists)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Chaos property: any seeded fault plan that crashes fewer than
    /// `n_nodes - 1` workers (so at least one survives) must, under
    /// `Reassign`, produce histograms bit-identical to a fault-free run —
    /// in both the static and the self-scheduling runner — while charging
    /// a nonzero recovery cost whenever something actually crashed.
    #[test]
    fn survivable_fault_plans_preserve_results(plan_seed in 0u64..10_000, n in 3usize..6) {
        let zones = zones();
        let plan = FaultPlan::random(plan_seed, n);
        prop_assert!(plan.validate(n).is_ok(), "random plans are always survivable");

        let clean = clean_hists(n);

        let mut faulty = chaos_cfg(n);
        faulty.faults = plan.clone();
        faulty.recovery = RecoveryPolicy::Reassign;
        let run = run_cluster(&faulty, zones).unwrap();
        prop_assert_eq!(&run.hists, clean, "static runner under plan {:?}", plan);
        let mut crashed = plan.crashed_ranks();
        crashed.sort_unstable();
        prop_assert_eq!(&run.failed_ranks, &crashed);
        if !crashed.is_empty() {
            prop_assert!(run.recovery_secs > 0.0, "crash recovery is not free");
        }

        let mut dyn_faulty = chaos_cfg(n);
        dyn_faulty.faults = plan.clone();
        dyn_faulty.recovery = RecoveryPolicy::Reassign;
        let dyn_run = run_dynamic(&dyn_faulty, zones).unwrap();
        prop_assert_eq!(&dyn_run.hists, clean, "dynamic runner under plan {:?}", plan);
        prop_assert_eq!(&dyn_run.failed_ranks, &crashed);
    }
}
