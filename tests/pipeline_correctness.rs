//! End-to-end correctness: the four-step pipeline must agree **exactly**
//! with two independent reference implementations on realistic workloads.

use zonal_histo::geo::CountyConfig;
use zonal_histo::gpusim::DeviceSpec;
use zonal_histo::raster::srtm::SyntheticSrtm;
use zonal_histo::raster::{GeoTransform, TileGrid};
use zonal_histo::zonal::pipeline::{run_partition, Zones};
use zonal_histo::zonal::{baseline, PipelineConfig};

/// A realistic small workload: 48-zone jittered tessellation with holes and
/// islands, over a synthetic DEM with ocean no-data.
fn workload(seed: u64) -> (Zones, SyntheticSrtm, TileGrid) {
    let mut cfg = CountyConfig::small(seed);
    cfg.nx = 8;
    cfg.ny = 6;
    cfg.hole_fraction = 0.3;
    cfg.island_fraction = 0.6;
    let zones = Zones::new(cfg.generate());
    let gt = GeoTransform::per_degree(cfg.extent.min_x, cfg.extent.min_y, 20);
    let rows = (cfg.extent.height() * 20.0).round() as usize;
    let cols = (cfg.extent.width() * 20.0).round() as usize;
    let grid = TileGrid::for_degree_tile(rows, cols, 0.5, gt);
    let src = SyntheticSrtm::new(grid.clone(), seed);
    (zones, src, grid)
}

#[test]
fn pipeline_matches_both_baselines_exactly() {
    for seed in [1u64, 17, 23981] {
        let (zones, src, _grid) = workload(seed);
        let cfg = PipelineConfig::paper(DeviceSpec::gtx_titan())
            .with_tile_deg(0.5)
            .with_bins(5000);
        let pipe = run_partition(&cfg, &zones, &src);
        let raster = src.to_raster();
        let pip = baseline::full_pip_serial(&zones.layer, &raster, cfg.n_bins);
        let scan = baseline::scanline_serial(&zones.layer, &raster, cfg.n_bins);
        assert_eq!(pipe.hists, pip, "pipeline vs PIP oracle, seed {seed}");
        assert_eq!(pipe.hists, scan, "pipeline vs scanline oracle, seed {seed}");
    }
}

#[test]
fn tessellation_partitions_valid_cells() {
    // Over a space-filling layer, every histogrammable cell inside the layer
    // extent belongs to exactly one zone: total == per-cell census.
    let (zones, src, _) = workload(5);
    let cfg = PipelineConfig::paper(DeviceSpec::gtx_titan())
        .with_tile_deg(0.5)
        .with_bins(5000);
    let result = run_partition(&cfg, &zones, &src);
    // Census: count valid cells whose center is in some zone (lakes and
    // no-data excluded).
    let raster = src.to_raster();
    let gt = raster.transform();
    let mut census = 0u64;
    for r in 0..raster.rows() {
        for c in 0..raster.cols() {
            let v = raster.get(r, c);
            if v as usize >= cfg.n_bins {
                continue;
            }
            let p = gt.cell_center(r, c);
            if zones.layer.polygons().iter().any(|poly| poly.contains(p)) {
                census += 1;
            }
        }
    }
    assert_eq!(result.hists.total(), census);
}

#[test]
fn results_independent_of_device_and_blockdim() {
    let (zones, src, _) = workload(9);
    let base = run_partition(
        &PipelineConfig::paper(DeviceSpec::gtx_titan()).with_tile_deg(0.5),
        &zones,
        &src,
    );
    for device in [DeviceSpec::quadro_6000(), DeviceSpec::tesla_k20x()] {
        for block_dim in [32usize, 1024] {
            let mut cfg = PipelineConfig::paper(device).with_tile_deg(0.5);
            cfg.block_dim = block_dim;
            let r = run_partition(&cfg, &zones, &src);
            assert_eq!(r.hists, base.hists, "{} bd={block_dim}", device.name);
        }
    }
}

#[test]
fn nodata_cells_accounted() {
    // The ocean mask is seed-dependent over a small box, so scan a few
    // seeds: all must balance their counts, and at least one must actually
    // contain water.
    let mut saw_water = false;
    for seed in 11u64..19 {
        let (zones, src, _) = workload(seed);
        let cfg = PipelineConfig::paper(DeviceSpec::gtx_titan()).with_tile_deg(0.5);
        let r = run_partition(&cfg, &zones, &src);
        assert_eq!(
            r.counts.n_valid_cells + r.counts.n_nodata_cells,
            r.counts.n_cells
        );
        // Counted cells can't exceed valid cells.
        assert!(r.hists.total() <= r.counts.n_valid_cells);
        saw_water |= r.counts.n_nodata_cells > 0;
    }
    assert!(saw_water, "some seed must produce ocean no-data");
}

#[test]
fn deterministic_across_runs() {
    let (zones, src, _) = workload(31);
    let cfg = PipelineConfig::paper(DeviceSpec::gtx_titan()).with_tile_deg(0.5);
    let a = run_partition(&cfg, &zones, &src);
    let b = run_partition(&cfg, &zones, &src);
    assert_eq!(a.hists, b.hists);
    assert_eq!(a.counts, b.counts);
}

#[test]
fn bin_count_only_truncates() {
    // Reducing bins must only drop cells with values ≥ n_bins, bin-for-bin.
    let (zones, src, _) = workload(13);
    let full = run_partition(
        &PipelineConfig::paper(DeviceSpec::gtx_titan())
            .with_tile_deg(0.5)
            .with_bins(5000),
        &zones,
        &src,
    );
    let small = run_partition(
        &PipelineConfig::paper(DeviceSpec::gtx_titan())
            .with_tile_deg(0.5)
            .with_bins(300),
        &zones,
        &src,
    );
    for z in 0..zones.len() {
        for b in 0..300 {
            assert_eq!(
                small.hists.get(z, b),
                full.hists.get(z, b),
                "zone {z} bin {b}"
            );
        }
    }
}

#[test]
fn representative_modes_match_their_baselines() {
    use zonal_histo::zonal::CellRepresentative;
    let (zones, src, _) = workload(21);
    let raster = src.to_raster();
    for mode in [
        CellRepresentative::Center,
        CellRepresentative::LowerLeftCorner,
        CellRepresentative::Majority4,
    ] {
        let cfg = PipelineConfig::paper(DeviceSpec::gtx_titan())
            .with_tile_deg(0.5)
            .with_bins(5000)
            .with_representative(mode);
        let pipe = run_partition(&cfg, &zones, &src);
        let oracle =
            baseline::full_pip_with_representative(&zones.layer, &raster, cfg.n_bins, mode);
        assert_eq!(pipe.hists, oracle, "{mode:?}");
    }
}

#[test]
fn corner_mode_shifts_boundary_attribution() {
    use zonal_histo::zonal::CellRepresentative;
    let (zones, src, _) = workload(22);
    let base = run_partition(
        &PipelineConfig::paper(DeviceSpec::gtx_titan()).with_tile_deg(0.5),
        &zones,
        &src,
    );
    let corner = run_partition(
        &PipelineConfig::paper(DeviceSpec::gtx_titan())
            .with_tile_deg(0.5)
            .with_representative(CellRepresentative::LowerLeftCorner),
        &zones,
        &src,
    );
    assert_ne!(
        base.hists, corner.hists,
        "different representatives must differ at boundaries"
    );
    // But both are partition rules: identical totals over a tessellation
    // would require identical land masks — compare approximately instead:
    // totals differ by less than the boundary-cell population.
    let delta = base.hists.total().abs_diff(corner.hists.total());
    assert!(
        delta < base.counts.pip_cells_tested,
        "delta {delta} bounded by boundary cells"
    );
}
