//! Property tests pinning the parallel primitives to naive models.

use proptest::prelude::*;
use zonal_histo::gpusim::primitives::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn exclusive_scan_model(v in prop::collection::vec(0u32..1000, 0..500)) {
        let (scan, total) = exclusive_scan(&v);
        prop_assert_eq!(scan.len(), v.len());
        let mut acc = 0u32;
        for (i, &x) in v.iter().enumerate() {
            prop_assert_eq!(scan[i], acc);
            acc += x;
        }
        prop_assert_eq!(total, acc);
    }

    #[test]
    fn parallel_scan_equals_sequential(v in prop::collection::vec(0u32..100, 0..60_000)) {
        prop_assert_eq!(exclusive_scan_par(&v), exclusive_scan(&v));
    }

    #[test]
    fn inclusive_is_exclusive_shifted(v in prop::collection::vec(0u32..100, 1..200)) {
        let inc = inclusive_scan(&v);
        let (exc, total) = exclusive_scan(&v);
        for i in 0..v.len() - 1 {
            prop_assert_eq!(inc[i], exc[i + 1]);
        }
        prop_assert_eq!(*inc.last().unwrap(), total);
    }

    #[test]
    fn stable_sort_model(v in prop::collection::vec((0u32..10, 0usize..1000), 0..300)) {
        let mut ours: Vec<(u32, usize)> = v.clone();
        stable_sort_by_key(&mut ours, |&(k, _)| k);
        let mut std_sorted = v.clone();
        std_sorted.sort_by_key(|&(k, _)| k); // std stable sort
        prop_assert_eq!(ours, std_sorted);
    }

    #[test]
    fn stable_partition_model(v in prop::collection::vec(0u32..100, 0..300)) {
        let mut ours = v.clone();
        let split = stable_partition(&mut ours, |&x| x % 3 == 0);
        let yes: Vec<u32> = v.iter().copied().filter(|&x| x % 3 == 0).collect();
        let no: Vec<u32> = v.iter().copied().filter(|&x| x % 3 != 0).collect();
        prop_assert_eq!(split, yes.len());
        prop_assert_eq!(&ours[..split], &yes[..]);
        prop_assert_eq!(&ours[split..], &no[..]);
    }

    #[test]
    fn reduce_by_key_model(keys in prop::collection::vec(0u8..5, 0..300)) {
        let vals = vec![1u32; keys.len()];
        let (rk, rs) = reduce_by_key(&keys, &vals);
        // Model: fold over runs.
        let mut mk: Vec<u8> = Vec::new();
        let mut ms: Vec<u32> = Vec::new();
        for (i, &k) in keys.iter().enumerate() {
            if i == 0 || keys[i - 1] != k {
                mk.push(k);
                ms.push(1);
            } else {
                *ms.last_mut().unwrap() += 1;
            }
        }
        prop_assert_eq!(&rk, &mk);
        prop_assert_eq!(&rs, &ms);
        // Totals preserved.
        prop_assert_eq!(rs.iter().sum::<u32>() as usize, keys.len());
        // No two adjacent output keys equal.
        for i in 1..mk.len() {
            prop_assert_ne!(mk[i - 1], mk[i]);
        }
    }

    #[test]
    fn gather_scatter_roundtrip(n in 1usize..200, seed in 0u64..1000) {
        // Build a permutation deterministically from the seed.
        let mut perm: Vec<usize> = (0..n).collect();
        let mut s = seed;
        for i in (1..n).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            perm.swap(i, (s % (i as u64 + 1)) as usize);
        }
        let src: Vec<u32> = (0..n as u32).map(|i| i * 7 + 1).collect();
        let gathered = gather(&perm, &src);
        let back = scatter(&gathered, &perm, n);
        prop_assert_eq!(back, src);
    }

    #[test]
    fn copy_if_model(v in prop::collection::vec(0i32..100, 0..300)) {
        let ours = copy_if(&v, |&x| x > 50);
        let model: Vec<i32> = v.iter().copied().filter(|&x| x > 50).collect();
        prop_assert_eq!(ours, model);
    }

    #[test]
    fn rle_reconstructs_input(keys in prop::collection::vec(0u8..4, 0..200)) {
        let (rk, rc) = run_length_encode(&keys);
        let mut rebuilt = Vec::new();
        for (k, c) in rk.iter().zip(&rc) {
            rebuilt.extend(std::iter::repeat_n(*k, *c as usize));
        }
        prop_assert_eq!(rebuilt, keys);
    }
}

/// Property: over random Fig. 2-shaped kernels (random block width, seed,
/// and raster data), the kernel sanitizer flags **exactly** the variants
/// missing the barrier between the zero phase and the accumulate phase —
/// every barrier-free kernel with a cross-thread conflict produces a race
/// report, every barriered kernel is clean.
#[cfg(feature = "sanitize")]
mod sanitizer_props {
    use proptest::prelude::*;
    use zonal_histo::gpusim::block::SimtBlock;
    use zonal_histo::gpusim::sanitizer::BlockReport;
    use zonal_histo::gpusim::TrackedBufU32;

    /// Zero-phase + accumulate-phase histogram kernel; `with_barrier`
    /// decides whether the Fig. 2 line-5 `__syncthreads()` is present.
    fn histogram_report(
        block_dim: usize,
        seed: u64,
        data: &[u16],
        hist_size: usize,
        with_barrier: bool,
    ) -> BlockReport {
        let hist = TrackedBufU32::labelled("his_d_raster", hist_size);
        SimtBlock::new(block_dim).run_sanitized(seed, |ctx| {
            for k in ctx.strided(hist_size) {
                hist.store(k, 0);
            }
            if with_barrier {
                ctx.sync();
            }
            for i in ctx.strided(data.len()) {
                hist.add(data[i] as usize, 1);
            }
            ctx.sync();
        })
    }

    /// True iff some bin is zeroed by one thread and accumulated by
    /// another — i.e. omitting the barrier creates a cross-thread race the
    /// detector is required to find. (Without such a conflict — e.g. a
    /// single-thread block — the barrier-free kernel is genuinely safe.)
    fn has_cross_thread_conflict(block_dim: usize, data: &[u16], hist_size: usize) -> bool {
        data.iter().enumerate().any(|(i, &v)| {
            let accum_tid = i % block_dim;
            let zero_tid = (v as usize) % block_dim;
            (v as usize) < hist_size && accum_tid != zero_tid
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn sanitizer_flags_exactly_the_barrier_free_kernels(
            block_dim in 2usize..9,
            seed in 0u64..1000,
            data in prop::collection::vec(0u16..8, 8..64),
        ) {
            let hist_size = 8usize;

            let clean = histogram_report(block_dim, seed, &data, hist_size, true);
            prop_assert!(
                clean.races.is_empty() && clean.divergence.is_none(),
                "barriered kernel must be race-free: {clean}"
            );

            let racy = histogram_report(block_dim, seed, &data, hist_size, false);
            if has_cross_thread_conflict(block_dim, &data, hist_size) {
                prop_assert!(
                    !racy.races.is_empty(),
                    "missing barrier with a cross-thread conflict must race: {racy}"
                );
                // Epoch-based detection is schedule-independent: the same
                // seed reproduces the identical report.
                prop_assert_eq!(&racy, &histogram_report(block_dim, seed, &data, hist_size, false));
            } else {
                prop_assert!(
                    racy.races.is_empty(),
                    "no cross-thread conflict, no race: {racy}"
                );
            }
        }
    }
}
