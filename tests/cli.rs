//! End-to-end tests of the `zonal-cli` binary: generate → zones → info →
//! run, exercising the on-disk containers and WKT layer I/O through the
//! real executable.

use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_zonal-cli"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("zonal-cli-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn full_workflow() {
    let dir = tmpdir("full");
    let dem = dir.join("dem.zbqt");
    let zones = dir.join("zones.wkt");
    let csv = dir.join("hist.csv");

    // generate
    let out = cli()
        .args(["generate", "--out"])
        .arg(&dem)
        .args([
            "--extent", "-105", "38", "-103", "40", "--cpd", "20", "--seed", "7",
        ])
        .output()
        .expect("run generate");
    assert!(
        out.status.success(),
        "generate: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(dem.exists());

    // zones
    let out = cli()
        .args(["zones", "--out"])
        .arg(&zones)
        .args([
            "--extent", "-105", "38", "-103", "40", "--nx", "4", "--ny", "4", "--seed", "7",
        ])
        .output()
        .expect("run zones");
    assert!(
        out.status.success(),
        "zones: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let wkt = std::fs::read_to_string(&zones).expect("read zones");
    assert_eq!(wkt.lines().filter(|l| !l.trim().is_empty()).count(), 16);

    // info
    let out = cli()
        .args(["info", "--raster"])
        .arg(&dem)
        .output()
        .expect("run info");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("40 x 40 cells"), "info output: {text}");
    assert!(text.contains("storage:"), "info output: {text}");

    // run
    let out = cli()
        .args(["run", "--raster"])
        .arg(&dem)
        .arg("--zones")
        .arg(&zones)
        .args(["--bins", "5000", "--csv"])
        .arg(&csv)
        .output()
        .expect("run run");
    assert!(
        out.status.success(),
        "run: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let table = String::from_utf8_lossy(&out.stdout);
    // Header + 16 zone rows.
    assert_eq!(table.lines().count(), 17, "stats table: {table}");
    assert!(table.contains("zone-0"));
    // CSV exists and is well-formed.
    let csv_text = std::fs::read_to_string(&csv).expect("read csv");
    assert!(csv_text.starts_with("zone,bin,count\n"));
    assert!(csv_text.lines().count() > 1, "some zone must have cells");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_flags_fail_cleanly() {
    let out = cli().args(["run", "--raster"]).output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error:"));

    let out = cli()
        .args(["frobnicate", "--x", "1"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    let out = cli().output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn info_rejects_non_container() {
    let dir = tmpdir("badfile");
    let junk = dir.join("junk.zbqt");
    std::fs::write(&junk, b"this is not a raster container at all").expect("write junk");
    let out = cli()
        .args(["info", "--raster"])
        .arg(&junk)
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("ZBQT"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn generate_rejects_inverted_extent() {
    let dir = tmpdir("extent");
    let out = cli()
        .args(["generate", "--out"])
        .arg(dir.join("x.zbqt"))
        .args(["--extent", "-103", "38", "-105", "40"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("LON0 < LON1"));
    std::fs::remove_dir_all(&dir).ok();
}
