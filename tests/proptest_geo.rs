//! Property tests for the geometry substrate.

use proptest::prelude::*;
use zonal_histo::geo::{
    classify_box, point_in_ring, FlatPolygons, Mbr, Point, Polygon, Ring, TileRelation,
};

/// Star-shaped polygon from random radii: always simple (non-self-
/// intersecting), arbitrary vertex count, concave in general.
fn star_polygon(cx: f64, cy: f64, radii: &[f64]) -> Polygon {
    let n = radii.len();
    let pts = radii
        .iter()
        .enumerate()
        .map(|(i, &r)| {
            let t = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
            Point::new(cx + r * t.cos(), cy + r * t.sin())
        })
        .collect();
    Polygon::from_ring(Ring::new(pts))
}

fn radii_strategy() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.2f64..3.0, 3..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn flat_contains_matches_object_contains(
        radii in radii_strategy(),
        probes in prop::collection::vec((-4.0f64..4.0, -4.0f64..4.0), 32),
    ) {
        let poly = star_polygon(10.0, 10.0, &radii);
        let flat = FlatPolygons::from_polygons(std::slice::from_ref(&poly));
        for (dx, dy) in probes {
            let p = Point::new(10.0 + dx, 10.0 + dy);
            prop_assert_eq!(flat.contains(0, p), poly.contains(p), "at {:?}", p);
        }
    }

    #[test]
    fn flat_contains_matches_for_multi_ring(
        outer in radii_strategy(),
        probes in prop::collection::vec((-4.0f64..4.0, -4.0f64..4.0), 24),
    ) {
        // Outer star + a hole star scaled to 30% (strictly inside since
        // min radius ratio holds pointwise on the same angles).
        let n = outer.len();
        let hole: Vec<f64> = outer.iter().map(|r| r * 0.3).collect();
        let mk = |radii: &[f64]| {
            Ring::new(
                radii
                    .iter()
                    .enumerate()
                    .map(|(i, &r)| {
                        let t = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
                        Point::new(10.0 + r * t.cos(), 10.0 + r * t.sin())
                    })
                    .collect(),
            )
        };
        let poly = Polygon::new(vec![mk(&outer), mk(&hole)]);
        let flat = FlatPolygons::from_polygons(std::slice::from_ref(&poly));
        for (dx, dy) in probes {
            let p = Point::new(10.0 + dx, 10.0 + dy);
            prop_assert_eq!(flat.contains(0, p), poly.contains(p), "at {:?}", p);
        }
    }

    #[test]
    fn ring_orientation_does_not_change_containment(
        radii in radii_strategy(),
        px in -4.0f64..4.0,
        py in -4.0f64..4.0,
    ) {
        let poly = star_polygon(0.0, 0.0, &radii);
        let mut rev = poly.rings()[0].clone();
        rev.reverse();
        let p = Point::new(px, py);
        prop_assert_eq!(point_in_ring(p, &poly.rings()[0]), point_in_ring(p, &rev));
    }

    #[test]
    fn classify_box_consistent_with_center_samples(
        radii in radii_strategy(),
        bx in -3.5f64..3.5,
        by in -3.5f64..3.5,
        side in 0.1f64..2.0,
    ) {
        let poly = star_polygon(0.0, 0.0, &radii);
        let tile = Mbr::new(bx, by, bx + side, by + side);
        let rel = classify_box(&poly, &tile);
        // Sample a grid of interior points: Inside ⇒ all in; Outside ⇒ all out.
        for i in 0..5 {
            for j in 0..5 {
                let p = Point::new(
                    tile.min_x + side * (i as f64 + 0.5) / 5.0,
                    tile.min_y + side * (j as f64 + 0.5) / 5.0,
                );
                match rel {
                    TileRelation::Inside => prop_assert!(poly.contains(p), "Inside tile has outside point {:?}", p),
                    TileRelation::Outside => prop_assert!(!poly.contains(p), "Outside tile has inside point {:?}", p),
                    TileRelation::Intersect => {}
                }
            }
        }
    }

    #[test]
    fn mbr_union_contains_both(
        a in (-10.0f64..10.0, -10.0f64..10.0, 0.1f64..5.0, 0.1f64..5.0),
        b in (-10.0f64..10.0, -10.0f64..10.0, 0.1f64..5.0, 0.1f64..5.0),
    ) {
        let ma = Mbr::new(a.0, a.1, a.0 + a.2, a.1 + a.3);
        let mb = Mbr::new(b.0, b.1, b.0 + b.2, b.1 + b.3);
        let u = ma.union(&mb);
        prop_assert!(u.contains(&ma));
        prop_assert!(u.contains(&mb));
        let i = ma.intersection(&mb);
        if !i.is_empty() {
            prop_assert!(ma.contains(&i));
            prop_assert!(mb.contains(&i));
            prop_assert!(ma.intersects(&mb));
        }
    }

    #[test]
    fn polygon_area_within_mbr_area(radii in radii_strategy()) {
        let poly = star_polygon(0.0, 0.0, &radii);
        let mbr = poly.mbr();
        prop_assert!(poly.area() <= mbr.area() + 1e-9);
        prop_assert!(poly.area() > 0.0);
    }

    #[test]
    fn shared_edge_exclusivity(
        split in -0.8f64..0.8,
        px in -0.99f64..0.99,
        py in -0.99f64..0.99,
    ) {
        // Two rectangles sharing the vertical edge x = split partition
        // [-1,1]²: every interior point belongs to exactly one.
        let left = Polygon::rect(-1.0, -1.0, split, 1.0);
        let right = Polygon::rect(split, -1.0, 1.0, 1.0);
        let p = Point::new(px, py);
        let owners = usize::from(left.contains(p)) + usize::from(right.contains(p));
        prop_assert_eq!(owners, 1, "point {:?} split {}", p, split);
    }
}
