//! Serving-layer equivalence properties: a served answer is
//! bit-identical to the direct `run_partitions` computation — with the
//! cache on or off, batched or one-at-a-time, and across raster
//! updates. This is the contract that makes the serving layer an
//! optimization rather than an approximation.

use std::sync::Arc;

use proptest::prelude::*;
use zonal_histo::geo::{Polygon, PolygonLayer};
use zonal_histo::raster::{GeoTransform, Raster, TileGrid};
use zonal_histo::serve::{
    PartitionSource, QueryMix, RasterStore, ServeConfig, ZonalQuery, ZonalService,
};
use zonal_histo::zonal::pipeline::{run_partitions, Zones};
use zonal_histo::zonal::PipelineConfig;

fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic random fixture: 1–3 adjacent 8×8-cell partitions
/// (0.5° cells, 4-cell tiles = 2.0°) and 2–4 random rectangular zones
/// over the combined extent.
fn fixture(seed: u64) -> (Zones, Vec<PartitionSource>) {
    let n_parts = 1 + (mix64(seed) % 3) as usize;
    let n_zones = 2 + (mix64(seed ^ 1) % 3) as usize;
    let width = 4.0 * n_parts as f64;
    let zones = (0..n_zones)
        .map(|k| {
            let r = mix64(seed.wrapping_add(100 + k as u64));
            let x0 = (r % 1000) as f64 / 1000.0 * (width - 1.0);
            let y0 = ((r >> 10) % 1000) as f64 / 1000.0 * 3.0;
            let w = 0.5 + ((r >> 20) % 1000) as f64 / 1000.0 * (width - x0 - 0.5);
            let h = 0.5 + ((r >> 30) % 1000) as f64 / 1000.0 * (4.0 - y0 - 0.5);
            Polygon::rect(x0, y0, x0 + w, y0 + h)
        })
        .collect();
    let parts = (0..n_parts)
        .map(|i| {
            let gt = GeoTransform::new(4.0 * i as f64, 0.0, 0.5, 0.5);
            let raster = Raster::from_fn(8, 8, gt, |r, c| {
                (mix64(seed ^ ((i as u64) << 40 | (r as u64) << 20 | c as u64)) % 61) as u16
            });
            let grid = TileGrid::new(8, 8, 4, gt);
            PartitionSource::new(zonal_histo::bqtree::compress_source(
                &raster.tile_source(&grid),
            ))
        })
        .collect();
    (Zones::new(PolygonLayer::from_polygons(zones)), parts)
}

fn cfg() -> PipelineConfig {
    PipelineConfig::test().with_tile_deg(2.0)
}

/// The oracle every serving configuration must match bit-for-bit.
fn direct_rows(store: &RasterStore, n_bins: usize) -> Vec<Vec<u64>> {
    let result = run_partitions(
        &cfg().with_bins(n_bins),
        store.zones(),
        store.snapshot().band(0),
    );
    (0..store.zones().len())
        .map(|z| result.hists.zone(z).to_vec())
        .collect()
}

/// A short reproducible query workload over the fixture's zones.
fn workload(seed: u64, n_zones: usize) -> Vec<ZonalQuery> {
    let mix = QueryMix::new(seed, vec![16, 48, 80], n_zones);
    (0..6).map(|i| mix.query(i)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn served_equals_direct(seed in any::<u64>(), n_bins in 8usize..128) {
        let (zones, parts) = fixture(seed);
        let store = Arc::new(RasterStore::new(zones, parts));
        let want = direct_rows(&store, n_bins);
        let service = ZonalService::start(Arc::clone(&store), ServeConfig::new(cfg()));
        let resp = service.query(ZonalQuery::all_zones(n_bins)).expect("served");
        for (z, row) in want.iter().enumerate() {
            prop_assert_eq!(
                resp.zone(z as u32).expect("row"),
                row.as_slice(),
                "zone {} diverged from run_partitions",
                z
            );
        }
    }

    /// Caching is transparent: the same workload served twice with the
    /// cache enabled equals the cache-disabled service, byte for byte.
    #[test]
    fn cache_on_equals_cache_off(seed in any::<u64>()) {
        let (zones, parts) = fixture(seed);
        let store = Arc::new(RasterStore::new(zones, parts));
        let n_zones = store.zones().len();
        let cached = ZonalService::start(Arc::clone(&store), ServeConfig::new(cfg()));
        let uncached = ZonalService::start(
            Arc::clone(&store),
            ServeConfig::new(cfg()).without_caching(),
        );
        // Twice through the workload so the second pass hits the cache.
        for q in workload(seed, n_zones).iter().chain(workload(seed, n_zones).iter()) {
            let a = cached.query(q.clone()).expect("cached service");
            let b = uncached.query(q.clone()).expect("uncached service");
            prop_assert_eq!(a.rows.len(), b.rows.len());
            for ((za, ra), (zb, rb)) in a.rows.iter().zip(&b.rows) {
                prop_assert_eq!(za, zb);
                prop_assert_eq!(ra.as_slice(), rb.as_slice(), "query {:?}", q);
            }
        }
        let stats = cached.shutdown();
        prop_assert!(stats.row_cache_hits > 0, "second pass must hit the cache");
    }

    /// Batching is transparent: a burst submitted into one coalescing
    /// window equals the same queries served strictly one at a time.
    #[test]
    fn batched_equals_one_at_a_time(seed in any::<u64>()) {
        let (zones, parts) = fixture(seed);
        let store = Arc::new(RasterStore::new(zones, parts));
        let n_zones = store.zones().len();
        let queries = workload(seed, n_zones);

        let mut batching_cfg = ServeConfig::new(cfg());
        batching_cfg.batch_window = std::time::Duration::from_millis(60);
        let batching = ZonalService::start(Arc::clone(&store), batching_cfg);
        let tickets: Vec<_> = queries
            .iter()
            .map(|q| batching.submit(q.clone()).expect("admitted"))
            .collect();
        let batched: Vec<_> = tickets
            .into_iter()
            .map(|t| t.wait().expect("answered"))
            .collect();

        let serial_cfg = ServeConfig::new(cfg())
            .without_caching()
            .without_batch_window();
        let serial = ZonalService::start(Arc::clone(&store), serial_cfg);
        for (q, got) in queries.iter().zip(&batched) {
            let want = serial.query(q.clone()).expect("serial service");
            prop_assert_eq!(got.rows.len(), want.rows.len());
            for ((zg, rg), (zw, rw)) in got.rows.iter().zip(&want.rows) {
                prop_assert_eq!(zg, zw);
                prop_assert_eq!(rg.as_slice(), rw.as_slice(), "query {:?}", q);
            }
        }
    }

    /// A raster update invalidates: answers after `update_raster` match
    /// the direct computation on the new raster, never the old one.
    #[test]
    fn update_switches_to_new_raster(seed in any::<u64>(), n_bins in 8usize..96) {
        let (zones, parts) = fixture(seed);
        let store = Arc::new(RasterStore::new(zones, parts));
        let service = ZonalService::start(Arc::clone(&store), ServeConfig::new(cfg()));
        let v1 = service.query(ZonalQuery::all_zones(n_bins)).expect("v1");
        prop_assert_eq!(v1.raster_version, 1);

        let (_, new_parts) = fixture(seed ^ 0xdead_beef);
        // The new fixture may have a different partition count; the
        // store takes whatever band layout the update supplies.
        let v2 = service.update_raster(vec![new_parts]);
        prop_assert_eq!(v2, 2);
        let want = direct_rows(&store, n_bins);
        let resp = service.query(ZonalQuery::all_zones(n_bins)).expect("v2");
        prop_assert_eq!(resp.raster_version, 2);
        for (z, row) in want.iter().enumerate() {
            prop_assert_eq!(
                resp.zone(z as u32).expect("row"),
                row.as_slice(),
                "post-update zone {} diverged from the new raster",
                z
            );
        }
    }
}
