//! Serde round-trips: the timing, counter, config, and device records
//! must survive JSON bit-exactly. The cluster master/worker protocol and
//! the `tables --json` timing dump both rely on this.

use zonal_histo::geo::CountyConfig;
use zonal_histo::gpusim::DeviceSpec;
use zonal_histo::raster::srtm::SyntheticSrtm;
use zonal_histo::raster::{GeoTransform, TileGrid};
use zonal_histo::zonal::pipeline::{run_partition, Zones};
use zonal_histo::zonal::{PipelineConfig, ZonalResult};

fn roundtrip<T>(v: &T) -> T
where
    T: serde::Serialize + serde::Deserialize + PartialEq + std::fmt::Debug,
{
    let json = serde_json::to_string(v).expect("serialize");
    serde_json::from_str(&json).expect("deserialize")
}

/// A small but real pipeline run, so the records carry non-trivial
/// floats, strip vectors, and enum values rather than defaults.
fn run_small() -> ZonalResult {
    let mut ccfg = CountyConfig::small(11);
    ccfg.nx = 6;
    ccfg.ny = 4;
    let zones = Zones::new(ccfg.generate());
    let gt = GeoTransform::per_degree(ccfg.extent.min_x, ccfg.extent.min_y, 10);
    let rows = (ccfg.extent.height() * 10.0).round() as usize;
    let cols = (ccfg.extent.width() * 10.0).round() as usize;
    let grid = TileGrid::for_degree_tile(rows, cols, 0.8, gt);
    let src = SyntheticSrtm::new(grid, 11);
    let cfg = PipelineConfig::test();
    run_partition(&cfg, &zones, &src)
}

#[test]
fn timings_and_counts_roundtrip_bit_exact() {
    let result = run_small();
    assert!(
        !result.timings.strips.is_empty(),
        "want strip records in the round-trip payload"
    );
    let t2 = roundtrip(&result.timings);
    assert_eq!(result.timings, t2);
    // Float fields must come back to the identical bits, not merely
    // approximately equal: the cost model re-prices them downstream.
    assert_eq!(
        result.timings.steps[0].wall_secs.to_bits(),
        t2.steps[0].wall_secs.to_bits()
    );
    assert_eq!(result.counts, roundtrip(&result.counts));
}

#[test]
fn config_and_device_roundtrip() {
    for device in [
        DeviceSpec::quadro_6000(),
        DeviceSpec::gtx_titan(),
        DeviceSpec::tesla_k20x(),
    ] {
        assert_eq!(device, roundtrip(&device));
        let cfg = PipelineConfig::paper(device);
        assert_eq!(cfg, roundtrip(&cfg));
    }
    assert_eq!(PipelineConfig::test(), roundtrip(&PipelineConfig::test()));
}

#[test]
fn pretty_and_compact_json_parse_identically() {
    let result = run_small();
    let compact = serde_json::to_string(&result.timings).expect("compact");
    let pretty = serde_json::to_string_pretty(&result.timings).expect("pretty");
    assert_ne!(compact, pretty);
    let a: zonal_histo::zonal::PipelineTimings =
        serde_json::from_str(&compact).expect("parse compact");
    let b: zonal_histo::zonal::PipelineTimings =
        serde_json::from_str(&pretty).expect("parse pretty");
    assert_eq!(a, b);
}
