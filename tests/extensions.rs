//! Integration tests for the analysis extensions the paper's introduction
//! motivates: temporal streams, histogram distances, zone clustering, and
//! scheduling policies.

use zonal_histo::cluster::{simulate, Policy};
use zonal_histo::geo::CountyConfig;
use zonal_histo::gpusim::DeviceSpec;
use zonal_histo::raster::timeseries::{field, EpochSource};
use zonal_histo::raster::{GeoTransform, TileGrid, NODATA};
use zonal_histo::zonal::distance::Measure;
use zonal_histo::zonal::pipeline::Zones;
use zonal_histo::zonal::temporal::run_epochs;
use zonal_histo::zonal::zone_cluster::kmedoids;
use zonal_histo::zonal::{PipelineConfig, ZoneHistograms};

fn setup() -> (Zones, GeoTransform, usize, usize) {
    let mut c = CountyConfig::us_like(5);
    c.nx = 8;
    c.ny = 6;
    c.edge_subdiv = 2;
    let zones = Zones::new(c.generate());
    let cpd = 4u32;
    let gt = GeoTransform::per_degree(c.extent.min_x, c.extent.min_y, cpd);
    let rows = (c.extent.height() * cpd as f64).round() as usize;
    let cols = (c.extent.width() * cpd as f64).round() as usize;
    (zones, gt, rows, cols)
}

#[test]
fn temporal_pipeline_runs_and_epochs_differ() {
    let (zones, gt, rows, cols) = setup();
    let cfg = PipelineConfig::paper(DeviceSpec::gtx_titan())
        .with_tile_deg(1.0)
        .with_bins(2000);
    let result = run_epochs(&cfg, &zones, 5, |epoch| {
        EpochSource::new(TileGrid::for_degree_tile(rows, cols, 1.0, gt), 5, epoch)
    });
    assert_eq!(result.n_epochs(), 5);
    assert_eq!(result.n_zones(), zones.len());
    // Every epoch counts the same number of cells (same land mask)…
    let totals: Vec<u64> = result.epochs.iter().map(ZoneHistograms::total).collect();
    assert!(
        totals.iter().all(|&t| t == totals[0] && t > 0),
        "{totals:?}"
    );
    // …but the distributions evolve.
    let series = result.change_series(Measure::L1);
    assert!(
        series.iter().flatten().any(|&d| d > 0.0),
        "the field must actually change between epochs"
    );
    // Change series distances are finite and symmetric-in-definition.
    for s in &series {
        assert_eq!(s.len(), 4);
        assert!(s.iter().all(|d| d.is_finite()));
    }
}

#[test]
fn consecutive_epochs_closer_than_distant_ones() {
    let (zones, gt, rows, cols) = setup();
    let cfg = PipelineConfig::paper(DeviceSpec::gtx_titan())
        .with_tile_deg(1.0)
        .with_bins(2000);
    let mk = |epoch| EpochSource::new(TileGrid::for_degree_tile(rows, cols, 1.0, gt), 5, epoch);
    let e0 = zonal_histo::zonal::run_partition(&cfg, &zones, &mk(0)).hists;
    let e1 = zonal_histo::zonal::run_partition(&cfg, &zones, &mk(1)).hists;
    let e30 = zonal_histo::zonal::run_partition(&cfg, &zones, &mk(30)).hists;
    // Aggregate over zones: near epochs closer than distant ones.
    let dist = |a: &ZoneHistograms, b: &ZoneHistograms| -> f64 {
        (0..zones.len())
            .map(|z| Measure::Emd1d.eval(a.zone(z), b.zone(z)))
            .sum()
    };
    let near = dist(&e0, &e1);
    let far = dist(&e0, &e30);
    assert!(near < far, "near {near} vs far {far}");
}

#[test]
fn field_and_elevation_share_land_mask() {
    for k in 0..60 {
        let x = -122.0 + (k % 10) as f64 * 5.7;
        let y = 25.5 + (k / 10) as f64 * 4.1;
        assert_eq!(
            field(7, 4, x, y) == NODATA,
            zonal_histo::raster::srtm::elevation(7, x, y) == NODATA,
            "at ({x},{y})"
        );
    }
}

#[test]
fn clustering_real_elevation_zones_separates_terrain() {
    // Cluster zones of a real pipeline run by elevation histogram: zones in
    // the same cluster should have similar mean elevations.
    let (zones, gt, rows, cols) = setup();
    let cfg = PipelineConfig::paper(DeviceSpec::gtx_titan())
        .with_tile_deg(1.0)
        .with_bins(5000);
    let grid = TileGrid::for_degree_tile(rows, cols, 1.0, gt);
    let dem = zonal_histo::raster::srtm::SyntheticSrtm::new(grid, 5);
    let hists = zonal_histo::zonal::run_partition(&cfg, &zones, &dem).hists;
    let k = 3;
    let clustering = kmedoids(&hists, k, Measure::Emd1d, 1, 30);
    // Intra-cluster mean-elevation spread must be below the global spread.
    let mean_of = |z: usize| {
        let h = hists.zone(z);
        let n: u64 = h.iter().sum();
        if n == 0 {
            return f64::NAN;
        }
        h.iter()
            .enumerate()
            .map(|(v, &c)| v as f64 * c as f64)
            .sum::<f64>()
            / n as f64
    };
    let means: Vec<f64> = (0..zones.len()).map(mean_of).collect();
    let valid: Vec<f64> = means.iter().copied().filter(|m| m.is_finite()).collect();
    let global_spread = valid.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - valid.iter().cloned().fold(f64::INFINITY, f64::min);
    let mut max_intra = 0.0f64;
    for c in 0..k {
        let ms: Vec<f64> = clustering
            .members(c)
            .into_iter()
            .map(|z| means[z])
            .filter(|m| m.is_finite())
            .collect();
        if ms.len() >= 2 {
            let spread = ms.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                - ms.iter().cloned().fold(f64::INFINITY, f64::min);
            max_intra = max_intra.max(spread);
        }
    }
    assert!(
        max_intra < global_spread,
        "clusters must be tighter than the whole: {max_intra} vs {global_spread}"
    );
}

#[test]
fn scheduling_policies_ordered_as_expected() {
    // On skewed costs: oracle ≤ dynamic ≤ round-robin (up to the request
    // latency), and all respect the trivial bounds.
    let costs: Vec<f64> = (0..36).map(|i| 1.0 + ((i * 7) % 11) as f64).collect();
    let cells: Vec<u64> = (0..36).map(|i| 500 + (i % 7) as u64 * 100).collect();
    let lower = costs.iter().sum::<f64>() / 8.0;
    let oracle = simulate(Policy::OracleLpt, &costs, &cells, 8, 0.0);
    let dynamic = simulate(Policy::DynamicSelfScheduling, &costs, &cells, 8, 0.0);
    let rr = simulate(Policy::StaticRoundRobin, &costs, &cells, 8, 0.0);
    assert!(oracle.makespan >= lower - 1e-9);
    assert!(oracle.makespan <= dynamic.makespan + 1e-9);
    assert!(dynamic.makespan <= rr.makespan + 1e-9);
}
