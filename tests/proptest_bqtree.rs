//! Property tests for the BQ-Tree codec: lossless round-trip over adversarial
//! tile shapes and value distributions.

use proptest::prelude::*;
use zonal_histo::bqtree::{decode_tile, encode_tile};
use zonal_histo::raster::TileData;

fn tile_strategy() -> impl Strategy<Value = TileData> {
    (1usize..40, 1usize..40).prop_flat_map(|(rows, cols)| {
        prop::collection::vec(any::<u16>(), rows * cols)
            .prop_map(move |values| TileData::new(values, rows, cols))
    })
}

/// Low-entropy tiles: few distinct values, like classified land-cover
/// rasters (the other data family the paper's technique targets).
fn low_entropy_tile() -> impl Strategy<Value = TileData> {
    (1usize..40, 1usize..40, prop::collection::vec(0u16..4, 1..4)).prop_flat_map(
        |(rows, cols, alphabet)| {
            prop::collection::vec(0usize..alphabet.len(), rows * cols).prop_map(move |idx| {
                TileData::new(idx.iter().map(|&i| alphabet[i]).collect(), rows, cols)
            })
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn roundtrip_arbitrary(tile in tile_strategy()) {
        let enc = encode_tile(&tile);
        prop_assert_eq!(decode_tile(&enc), tile);
    }

    #[test]
    fn roundtrip_low_entropy_and_compresses(tile in low_entropy_tile()) {
        let enc = encode_tile(&tile);
        prop_assert_eq!(decode_tile(&enc), tile.clone());
        // With ≤ 4 distinct small values, 14 of 16 planes are uniform zero:
        // sizable tiles must compress.
        if tile.len() >= 256 {
            prop_assert!(
                enc.len() < tile.len() * 2,
                "low-entropy tile should beat raw: {} vs {}",
                enc.len(),
                tile.len() * 2
            );
        }
    }

    #[test]
    fn encoding_is_deterministic(tile in tile_strategy()) {
        prop_assert_eq!(encode_tile(&tile), encode_tile(&tile));
    }

    #[test]
    fn header_carries_shape(tile in tile_strategy()) {
        let enc = encode_tile(&tile);
        let dec = decode_tile(&enc);
        prop_assert_eq!(dec.rows, tile.rows);
        prop_assert_eq!(dec.cols, tile.cols);
    }
}
