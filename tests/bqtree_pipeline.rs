//! Storage invariance: running the pipeline from BQ-Tree-compressed tiles
//! (real Step 0) must give bit-identical results to running from raw tiles,
//! while moving fewer input bytes.

use zonal_histo::bqtree::compress_source;
use zonal_histo::geo::CountyConfig;
use zonal_histo::gpusim::DeviceSpec;
use zonal_histo::raster::srtm::SyntheticSrtm;
use zonal_histo::raster::{GeoTransform, TileGrid, TileSource};
use zonal_histo::zonal::pipeline::{run_partition, Zones};
use zonal_histo::zonal::PipelineConfig;

fn setup(seed: u64) -> (Zones, SyntheticSrtm) {
    let mut c = CountyConfig::small(seed);
    c.nx = 6;
    c.ny = 5;
    let zones = Zones::new(c.generate());
    let gt = GeoTransform::per_degree(c.extent.min_x, c.extent.min_y, 32);
    let rows = (c.extent.height() * 32.0).round() as usize;
    let cols = (c.extent.width() * 32.0).round() as usize;
    let grid = TileGrid::for_degree_tile(rows, cols, 1.0, gt);
    (zones, SyntheticSrtm::new(grid, seed))
}

#[test]
fn compressed_and_raw_sources_agree() {
    let (zones, src) = setup(3);
    let cfg = PipelineConfig::paper(DeviceSpec::gtx_titan())
        .with_tile_deg(1.0)
        .with_bins(5000);
    let raw = run_partition(&cfg, &zones, &src);
    let bq = compress_source(&src);
    let comp = run_partition(&cfg, &zones, &bq);
    assert_eq!(raw.hists, comp.hists);
    assert_eq!(raw.counts.n_cells, comp.counts.n_cells);
    assert_eq!(raw.counts.pip_cells_tested, comp.counts.pip_cells_tested);
}

#[test]
fn compressed_source_reports_encoded_bytes() {
    let (zones, src) = setup(4);
    let cfg = PipelineConfig::paper(DeviceSpec::gtx_titan()).with_tile_deg(1.0);
    let bq = compress_source(&src);
    let stats = bq.stats();
    let comp = run_partition(&cfg, &zones, &bq);
    // The pipeline's Step 0 accounting must see the encoded sizes, not raw.
    assert_eq!(comp.counts.encoded_bytes, stats.encoded_bytes);
    assert_eq!(comp.counts.raw_bytes, stats.raw_bytes);
    assert_eq!(comp.timings.raster_input_bytes, stats.encoded_bytes);
}

#[test]
fn every_tile_roundtrips_through_codec() {
    let (_, src) = setup(5);
    let bq = compress_source(&src);
    let grid = src.grid();
    for t in grid.iter() {
        assert_eq!(
            bq.tile(t.tx, t.ty),
            src.tile(t.tx, t.ty),
            "tile ({}, {})",
            t.tx,
            t.ty
        );
    }
}
