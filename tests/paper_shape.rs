//! Shape assertions for every reproduced table/figure: who wins, by
//! roughly what factor, and where the orderings fall. These are the
//! machine-checked versions of EXPERIMENTS.md's claims.

use std::sync::OnceLock;
use zonal_histo::cluster::{run_scaling, ClusterConfig};
use zonal_histo::geo::CountyConfig;
use zonal_histo::gpusim::DeviceSpec;
use zonal_histo::raster::srtm::{SrtmCatalog, SyntheticSrtm};
use zonal_histo::zonal::pipeline::{run_partitions, ZonalResult, Zones};
use zonal_histo::zonal::PipelineConfig;

const SEED: u64 = 20140519;

/// US-shaped zones at reduced complexity (for test wall-time), generated
/// once and shared across tests.
fn zones() -> &'static Zones {
    static Z: OnceLock<Zones> = OnceLock::new();
    Z.get_or_init(|| {
        let mut cfg = CountyConfig::us_like(SEED);
        cfg.nx = 31;
        cfg.ny = 25;
        cfg.edge_subdiv = 3;
        Zones::new(cfg.generate())
    })
}

/// Run catalog partitions at a tiny resolution, merged. `stride` picks
/// every n-th partition (1 = the whole catalog) so shape tests can run a
/// spread-out sample instead of all 36 partitions.
fn run_catalog(cfg: &PipelineConfig, zones: &Zones, cpd: u32, stride: usize) -> ZonalResult {
    let sources: Vec<SyntheticSrtm> = SrtmCatalog::new(cpd)
        .partitions()
        .iter()
        .step_by(stride)
        .map(|part| SyntheticSrtm::new(part.grid(cfg.tile_deg), SEED))
        .collect();
    run_partitions(cfg, zones, &sources)
}

/// A stride-3 catalog sample (12 of 36 partitions) under the paper's GTX
/// Titan config at 30 cells/degree: several tests assert different shapes
/// of this same workload, so it runs once.
fn shared_catalog() -> &'static ZonalResult {
    static R: OnceLock<ZonalResult> = OnceLock::new();
    R.get_or_init(|| {
        let cfg = PipelineConfig::paper(DeviceSpec::gtx_titan());
        run_catalog(&cfg, zones(), 30, 3)
    })
}

#[test]
fn table1_catalog_totals() {
    let cat = SrtmCatalog::full_scale();
    assert_eq!(cat.rasters().len(), 6);
    assert_eq!(cat.n_partitions(), 36);
    assert_eq!(cat.total_cells(), 20_165_760_000);
}

#[test]
fn table2_step_ordering_and_device_ratios() {
    // Step 4's dominance depends on boundary-tile density, so this test
    // needs the paper-density layer (~3,100 zones), not the reduced one.
    // A stride-4 partition sample (9 of 36, spread across all rasters)
    // keeps the step ratios while shedding most of the wall time.
    let zones = Zones::new(CountyConfig::us_like(SEED).generate());
    let cfg = PipelineConfig::paper(DeviceSpec::gtx_titan());
    let result = run_catalog(&cfg, &zones, 20, 4);
    let f = 32_400.0; // (3600/20)^2: full-scale extrapolation
    let gtx = result.timings.step_sim_secs_at_scale(f);
    let quadro = result
        .timings
        .with_device(DeviceSpec::quadro_6000())
        .step_sim_secs_at_scale(f);

    // Paper: Step 4 dominates, Step 1 second; Steps 2 and 3 negligible.
    assert!(gtx[4] > gtx[1], "Step 4 must dominate Step 1: {gtx:?}");
    assert!(gtx[1] > gtx[3] * 10.0, "Step 3 negligible vs Step 1");
    assert!(gtx[1] > gtx[2] * 5.0, "Step 2 negligible vs Step 1");
    assert!(gtx[0] > 0.0, "decode is significant but measured");

    // Paper's device ratios: Step 4 ≈ 2.6x, Step 1 ≈ 1.6x, Step 0 ≈ 2x.
    let r4 = quadro[4] / gtx[4];
    let r1 = quadro[1] / gtx[1];
    let r0 = quadro[0] / gtx[0];
    assert!(
        (2.0..=3.2).contains(&r4),
        "Step 4 Kepler speedup {r4:.2} (paper 2.6x)"
    );
    assert!(
        (1.3..=2.0).contains(&r1),
        "Step 1 Kepler speedup {r1:.2} (paper 1.6x)"
    );
    assert!(
        (1.5..=2.5).contains(&r0),
        "Step 0 Kepler speedup {r0:.2} (paper ~2x)"
    );

    // Steps total: Kepler close to half of Fermi (paper: "nearly reduced to
    // half"); end-to-end strictly larger than the steps total (transfers).
    let e_g = result.timings.end_to_end_sim_secs_at_scale(f);
    assert!(e_g > result.timings.steps_total_sim_secs_at_scale(f));
    let s_ratio = result
        .timings
        .with_device(DeviceSpec::quadro_6000())
        .steps_total_sim_secs_at_scale(f)
        / result.timings.steps_total_sim_secs_at_scale(f);
    assert!(
        (1.6..=2.8).contains(&s_ratio),
        "steps-total ratio {s_ratio:.2}"
    );
}

#[test]
fn table2_filtering_saves_most_pip_work() {
    // The design's raison d'être: most cells avoid individual PIP tests
    // (inside/outside tiles are resolved wholesale).
    let result = shared_catalog();
    let frac = result.counts.pip_fraction();
    assert!(frac < 0.75, "PIP fraction {frac} should be well below 1");
    assert!(result.counts.inside_pairs > 0);
    // And the filtered pairs actually carried most of the counted cells.
    assert!(result.hists.total() > result.counts.pip_cells_inside);
}

#[test]
fn fig6_scaling_shape() {
    let mut base = ClusterConfig::titan(1, 8, SEED);
    base.pipeline.tile_deg = 0.5;
    base.pipeline.n_bins = 1000;
    let pts = run_scaling(&base, zones(), &[1, 2, 8]).expect("scaling sweep");
    let t: Vec<f64> = pts.iter().map(|(p, _)| p.sim_secs).collect();
    // Monotone decreasing.
    for w in t.windows(2) {
        assert!(w[1] < w[0], "more nodes must be faster: {t:?}");
    }
    // Near-linear at 2 nodes, sub-linear by 8 (imbalance flattening).
    let s2 = t[0] / t[1];
    let s8 = t[0] / t[2];
    assert!((1.7..=2.05).contains(&s2), "2-node speedup {s2:.2}");
    assert!((4.0..8.05).contains(&s8), "8-node speedup {s8:.2}");
    assert!(
        s8 < 8.0,
        "8-node speedup cannot be superlinear under the model"
    );
    // Imbalance grows with node count (paper §IV.C).
    let im: Vec<f64> = pts.iter().map(|(p, _)| p.imbalance_ratio).collect();
    assert!(im[2] >= im[1], "imbalance grows with nodes: {im:?}");
}

#[test]
fn k20x_slower_than_gtx_titan_single_node() {
    // §IV.C: the paper sees ~25-30% between K20X (60.7 s) and GTX Titan
    // (46 s) on the same workload, attributed to "lower clock rate and
    // bandwidth on K20 GPUs … as well as MPI overheads". The device-only
    // gap (steps, no transfers/MPI) should land a bit below that.
    let result = shared_catalog();
    let f = 14400.0;
    let gtx = result.timings.steps_total_sim_secs_at_scale(f);
    let k20x_timings = result.timings.with_device(DeviceSpec::tesla_k20x());
    let k20x = k20x_timings.steps_total_sim_secs_at_scale(f);
    let gap = k20x / gtx;
    assert!(
        (1.05..=1.45).contains(&gap),
        "K20X/GTX gap {gap:.2} (paper ~1.3 incl. MPI)"
    );
    // Stream overlap must pay off on the K20X too (the cluster nodes are
    // priced with the overlapped figure): below the serial end-to-end,
    // above the pure compute total.
    let serial = k20x_timings.end_to_end_sim_secs_at_scale(f);
    let overlapped = k20x_timings.end_to_end_overlapped_sim_secs_at_scale(f);
    assert!(
        overlapped < serial,
        "K20X overlapped {overlapped:.2}s vs serial {serial:.2}s"
    );
    assert!(
        overlapped >= k20x,
        "K20X overlapped {overlapped:.2}s cannot undercut compute {k20x:.2}s"
    );
}

#[test]
fn compression_claim_native_ratio() {
    // §IV.B: 40 GB -> 7.3 GB is 18.2% of raw; our native-tile ratio must be
    // in the same regime and the transfer argument must hold.
    let ratio = zonal_bench_ratio();
    assert!(
        (0.10..=0.35).contains(&ratio),
        "native ratio {ratio:.3} (paper 0.182)"
    );
    // Compressed transfer at 2.5 GB/s beats raw by at least 3x.
    assert!(1.0 / ratio > 3.0);
}

/// Local copy of the native-ratio sampler (the bench crate is not a
/// dependency of the root package).
fn zonal_bench_ratio() -> f64 {
    use zonal_histo::raster::{GeoTransform, TileGrid, TileSource};
    let mut raw = 0u64;
    let mut enc = 0u64;
    for k in 0..8 {
        let gt = GeoTransform::per_degree(
            -120.0 + (k % 4) as f64 * 12.3,
            28.0 + (k / 4) as f64 * 7.1,
            3600,
        );
        let grid = TileGrid::new(360, 360, 360, gt);
        let src = SyntheticSrtm::new(grid, SEED);
        let tile = src.tile(0, 0);
        raw += (tile.len() * 2) as u64;
        enc += zonal_histo::bqtree::encode_tile(&tile).len() as u64;
    }
    enc as f64 / raw as f64
}
